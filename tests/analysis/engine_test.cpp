// Engine-level tests: the code catalogue, the wiring into swacc, and the
// regression pinning the whole kernel suite to a clean swcheck report at
// its tuned launch parameters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <string>

#include "analysis/checker.h"
#include "kernels/suite.h"
#include "sw/error.h"
#include "swacc/lower.h"
#include "swacc/validate.h"

namespace swperf::analysis {
namespace {

const sw::ArchParams kArch = sw::ArchParams::sw26010();

swacc::KernelDesc overflow_kernel() {
  isa::BlockBuilder b("body");
  const auto x = b.spm_load();
  b.spm_store(b.fadd(x, x));
  swacc::KernelDesc k;
  k.name = "overflow";
  k.n_outer = 4096;
  k.body = std::move(b).build();
  k.arrays = {{"big", swacc::Dir::kIn, swacc::Access::kContiguous, 4096}};
  k.dma_min_tile = 1;
  return k;
}

TEST(Catalog, HasAtLeastTenCodesSortedAndDistinct) {
  const auto& cat = diagnostic_catalog();
  EXPECT_GE(cat.size(), 10u);
  std::set<std::string> codes;
  for (std::size_t i = 0; i < cat.size(); ++i) {
    codes.insert(cat[i].code);
    EXPECT_FALSE(std::string(cat[i].summary).empty());
    EXPECT_FALSE(std::string(cat[i].paper_ref).empty());
    if (i > 0) {
      EXPECT_LT(std::string(cat[i - 1].code), std::string(cat[i].code));
    }
  }
  EXPECT_EQ(codes.size(), cat.size());
}

TEST(Catalog, CoversEveryCodeFamily) {
  std::set<std::string> families;
  for (const auto& c : diagnostic_catalog()) {
    families.insert(std::string(c.code).substr(0, 3));
  }
  EXPECT_TRUE(families.count("SWK"));  // description structure
  EXPECT_TRUE(families.count("SWD"));  // launch checks
  EXPECT_TRUE(families.count("SWP"));  // program dataflow
  EXPECT_TRUE(families.count("SWI"));  // ISA lints
}

TEST(Engine, EmptyContextYieldsNoDiagnostics) {
  EXPECT_TRUE(run_checks(CheckContext{}).empty());
}

TEST(Engine, RegistryNamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const auto& c : all_checkers()) {
    ASSERT_NE(c->name(), nullptr);
    EXPECT_TRUE(names.insert(c->name()).second) << c->name();
  }
  EXPECT_GE(names.size(), 5u);
}

// ---- Wiring: swacc::lower / validate / validate_launch --------------------

TEST(Wiring, LowerThrowsWithDiagnosticCode) {
  swacc::LaunchParams p;
  p.tile = 64;  // 64 x 4096 B = 256 KiB > 64 KiB SPM
  try {
    swacc::lower(overflow_kernel(), p, kArch);
    FAIL() << "expected sw::Error";
  } catch (const sw::Error& e) {
    EXPECT_NE(std::string(e.what()).find("[SWD001]"), std::string::npos)
        << e.what();
  }
}

TEST(Wiring, ValidateThrowsWithDiagnosticCode) {
  swacc::KernelDesc k = overflow_kernel();
  k.comp_imbalance = 2.0;
  try {
    k.validate();
    FAIL() << "expected sw::Error";
  } catch (const sw::Error& e) {
    EXPECT_NE(std::string(e.what()).find("[SWK004]"), std::string::npos)
        << e.what();
  }
}

TEST(Wiring, ValidateLaunchReasonCarriesTheCode) {
  swacc::LaunchParams p;
  p.tile = 64;
  const auto report = swacc::validate_launch(overflow_kernel(), p, kArch);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.message.find("SWD001"), std::string::npos)
      << report.message;
}

TEST(Wiring, LowerAcceptsWhatTheCheckerAccepts) {
  swacc::LaunchParams p;
  p.tile = 8;
  ASSERT_FALSE(has_errors(check_launch(overflow_kernel(), p, kArch)));
  EXPECT_NO_THROW(swacc::lower(overflow_kernel(), p, kArch));
}

// ---- The whole-pipeline driver --------------------------------------------

TEST(Engine, CheckAllStopsAtLaunchErrors) {
  swacc::LaunchParams p;
  p.tile = 64;  // SPM overflow: lowering must not be attempted
  const auto diags = check_all(overflow_kernel(), p, kArch);
  EXPECT_TRUE(has_errors(diags));
}

TEST(Engine, CheckAllCoversLoweredPrograms) {
  swacc::LaunchParams p;
  p.tile = 8;
  p.double_buffer = true;
  const auto diags = check_all(overflow_kernel(), p, kArch);
  // A correctly lowered double-buffered kernel has no dataflow findings.
  EXPECT_TRUE(clean(diags));
}

// ---- Suite regression: every kernel is clean at its tuned parameters ------

class SuiteClean : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteClean, TunedConfigPassesSwcheck) {
  const auto spec = kernels::make(GetParam());
  const auto diags = check_all(spec.desc, spec.tuned, kArch);
  EXPECT_TRUE(clean(diags)) << [&] {
    std::string all;
    for (const auto& d : filter(diags, Severity::kWarning)) {
      all += d.to_string() + "\n";
    }
    return all;
  }();
}

TEST_P(SuiteClean, SmallScaleTunedConfigHasNoErrors) {
  // Tuned tiles target the full problem size; at the reduced scale some of
  // them legitimately leave CPEs idle (SWD006) or shift an array's share of
  // the staged bytes enough to promote a DMA-granularity note to a warning
  // (SWD005) — both are the checker doing its job on mismatched parameters.
  // Nothing may rise to an error, and no other warning may appear.
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const auto diags = check_all(spec.desc, spec.tuned, kArch);
  EXPECT_FALSE(has_errors(diags));
  for (const auto& d : filter(diags, Severity::kWarning)) {
    EXPECT_TRUE(d.code == "SWD005" || d.code == "SWD006") << d.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SuiteClean,
                         ::testing::ValuesIn(kernels::suite_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace swperf::analysis
