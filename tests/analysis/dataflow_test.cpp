// Units for the dataflow framework: CFG construction, the interval and
// range-set lattices, the generic worklist solver (exercised through the
// liveness and region analyses), and the agreement contract between the
// fixpoint liveness and the single-pass BasicBlock helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>

#include "analysis/dataflow/cfg.h"
#include "analysis/dataflow/interval.h"
#include "analysis/dataflow/liveness.h"
#include "analysis/dataflow/regions.h"
#include "kernels/suite.h"
#include "mem/request.h"
#include "sim/program.h"

namespace swperf::analysis::dataflow {
namespace {

mem::DmaRequest req(std::uint64_t bytes = 1024) {
  return mem::DmaRequest::contiguous(bytes);
}

std::string safe_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

// ---- CFG -------------------------------------------------------------------

TEST(Cfg, ProgramCfgHasFallthroughAndSelfLoops) {
  sim::CpeProgram p;
  p.dma(req());           // 0
  p.compute(0, 64);       // 1: iters > 1 -> self loop
  p.compute(1, 1);        // 2: single iteration -> no self loop
  p.gload_loop({8, 8});   // 3: count > 1 -> self loop
  p.barrier();            // 4

  const Cfg cfg = make_program_cfg(p);
  ASSERT_EQ(cfg.size(), 5u);
  EXPECT_FALSE(cfg.nodes[0].self_loop);
  EXPECT_TRUE(cfg.nodes[1].self_loop);
  EXPECT_FALSE(cfg.nodes[2].self_loop);
  EXPECT_TRUE(cfg.nodes[3].self_loop);
  // Fallthrough chain: every node i < 4 has an edge to i + 1.
  for (std::uint32_t i = 0; i + 1 < 5; ++i) {
    const auto& s = cfg.nodes[i].succs;
    EXPECT_NE(std::find(s.begin(), s.end(), i + 1), s.end()) << i;
  }
  const auto reach = cfg.reachable();
  EXPECT_TRUE(std::all_of(reach.begin(), reach.end(), [](bool b) {
    return b;
  }));
}

TEST(Cfg, RpoCoversEveryNodeExactlyOnce) {
  sim::CpeProgram p;
  for (int i = 0; i < 6; ++i) p.compute(0, 2);
  const Cfg cfg = make_program_cfg(p);
  auto order = cfg.rpo();
  ASSERT_EQ(order.size(), cfg.size());
  std::sort(order.begin(), order.end());
  for (std::uint32_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Cfg, BlockCfgBackEdgeOnlyWhenRepeated) {
  isa::BlockBuilder b("body");
  const auto x = b.spm_load();
  b.spm_store(b.fadd(x, x));
  const auto block = std::move(b).build();

  const Cfg straight = make_block_cfg(block, /*repeated=*/false);
  const Cfg looped = make_block_cfg(block, /*repeated=*/true);
  ASSERT_EQ(straight.size(), block.instrs.size());
  const auto& last_succs = straight.nodes[straight.size() - 1].succs;
  EXPECT_TRUE(last_succs.empty());
  const auto& loop_succs = looped.nodes[looped.size() - 1].succs;
  EXPECT_NE(std::find(loop_succs.begin(), loop_succs.end(), 0u),
            loop_succs.end());
}

// ---- Interval lattice ------------------------------------------------------

TEST(IntervalLattice, JoinMeetWidenBasics) {
  const Interval a = Interval::range(2, 5);
  const Interval b = Interval::range(4, 9);
  EXPECT_EQ(a.join(b), Interval::range(2, 9));
  EXPECT_EQ(a.meet(b), Interval::range(4, 5));
  EXPECT_TRUE(Interval::range(6, 7).meet(a).is_empty());
  // Widening jumps grown bounds to infinity but leaves stable ones alone.
  const Interval w = a.widen(Interval::range(2, 6));
  EXPECT_EQ(w.lo, 2);
  EXPECT_EQ(w.hi, Interval::kInf);
}

TEST(IntervalLattice, SaturatingArithmetic) {
  const Interval big = Interval::point(Interval::kInf - 1);
  EXPECT_EQ(big.add(big).hi, Interval::kInf);
  EXPECT_EQ(big.mul(big).hi, Interval::kInf);
  EXPECT_EQ(Interval::point(-Interval::kInf).sub(big).lo, -Interval::kInf);
  // Finite arithmetic stays exact.
  EXPECT_EQ(Interval::range(2, 3).mul(Interval::range(-4, 5)),
            Interval::range(-12, 15));
  EXPECT_EQ(Interval::range(1, 8).min_with(Interval::point(4)),
            Interval::range(1, 4));
  EXPECT_EQ(Interval::range(1, 8).max_with(Interval::point(4)),
            Interval::range(4, 8));
}

TEST(IntervalLattice, JoinIntoReportsChange) {
  Interval acc = Interval::point(3);
  EXPECT_FALSE(join_into(acc, Interval::point(3)));
  EXPECT_TRUE(join_into(acc, Interval::range(1, 2)));
  EXPECT_EQ(acc, Interval::range(1, 3));
}

// ---- RangeSet lattice ------------------------------------------------------

TEST(RangeSetLattice, AddMergesTouchingAndOverlapping) {
  RangeSet s;
  s.add({0, 64});
  s.add({128, 192});
  s.add({64, 128});  // touches both: everything merges
  ASSERT_EQ(s.spans.size(), 1u);
  EXPECT_EQ(s.spans[0].lo, 0u);
  EXPECT_EQ(s.spans[0].hi, 192u);
}

TEST(RangeSetLattice, QueriesRespectHalfOpenRanges) {
  RangeSet s;
  s.add({100, 200});
  EXPECT_TRUE(s.intersects({150, 151}));
  EXPECT_FALSE(s.intersects({200, 300}));  // half-open: 200 not in [100,200)
  EXPECT_TRUE(s.covers({100, 200}));
  EXPECT_FALSE(s.covers({100, 201}));
  EXPECT_TRUE(s.covers({10, 10}));  // empty range is vacuously covered
  const auto o = s.first_overlap({50, 150});
  EXPECT_EQ(o.lo, 100u);
  EXPECT_EQ(o.hi, 150u);
}

TEST(RangeSetLattice, UnionAndIntersectionReportChange) {
  RangeSet a;
  a.add({0, 100});
  RangeSet b;
  b.add({50, 150});
  EXPECT_TRUE(a.union_with(b));
  EXPECT_FALSE(a.union_with(b));  // already absorbed
  ASSERT_EQ(a.spans.size(), 1u);
  EXPECT_EQ(a.spans[0].hi, 150u);

  RangeSet c = RangeSet::all();
  RangeSet d;
  d.add({10, 20});
  EXPECT_TRUE(c.intersect_with(d));
  EXPECT_EQ(c, d);
  EXPECT_FALSE(c.intersect_with(d));
}

// ---- Liveness fixpoint vs the single-pass helpers --------------------------

class LivenessAgreement : public ::testing::TestWithParam<std::string> {};

TEST_P(LivenessAgreement, FixpointMatchesBlockHelpers) {
  const auto spec = kernels::make(GetParam());
  const isa::BasicBlock& body = spec.desc.body;
  if (body.instrs.empty()) GTEST_SKIP() << "gload kernel without a body";
  const BlockDataflow bd = analyze_block(body, /*repeated=*/true);
  EXPECT_EQ(bd.live_in, body.live_in());
  EXPECT_EQ(bd.carried, body.carried());
  EXPECT_GT(bd.solver_iterations, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, LivenessAgreement,
                         ::testing::ValuesIn(kernels::suite_names()),
                         safe_name);

TEST(Liveness, ReductionAccumulatorIsCarriedOnlyWhenRepeated) {
  isa::BlockBuilder b("body");
  const auto acc = b.reg();          // live-in accumulator
  const auto x = b.spm_load();       // 0
  b.accumulate_add(acc, x);          // 1: acc = acc + x
  const auto unused = b.fmul(x, x);  // 2: destination never read
  (void)unused;
  const auto block = std::move(b).build();

  // Straight-line: nothing reads acc after the block, so both the
  // accumulator update and the fmul are dead stores.
  const BlockDataflow once = analyze_block(block, /*repeated=*/false);
  EXPECT_NE(std::find(once.dead_defs.begin(), once.dead_defs.end(), 1u),
            once.dead_defs.end());
  EXPECT_NE(std::find(once.dead_defs.begin(), once.dead_defs.end(), 2u),
            once.dead_defs.end());

  // As a loop body, acc feeds the next iteration: the update is live and
  // acc is the (only) loop-carried register; the fmul stays dead.
  const BlockDataflow looped = analyze_block(block, /*repeated=*/true);
  EXPECT_EQ(looped.dead_defs, std::vector<std::size_t>{2u});
  ASSERT_EQ(looped.carried.size(), 1u);
  EXPECT_EQ(looped.carried[0], acc);
  EXPECT_EQ(looped.carried, block.carried());
  EXPECT_EQ(looped.live_in, block.live_in());
}

// ---- Region analysis core --------------------------------------------------

TEST(Regions, NoNotesMeansNoRegionFindings) {
  sim::CpeProgram p;
  p.dma(req()).compute(0, 64).dma(req());
  const RegionFacts rf = analyze_regions(p);
  EXPECT_TRUE(rf.protocol_ok);
  EXPECT_FALSE(rf.has_notes);
  EXPECT_TRUE(rf.findings.empty());
}

TEST(Regions, BrokenProtocolSuppressesFindings) {
  sim::CpeProgram p;
  p.ops.push_back(sim::DmaWaitOp{3});  // stray wait: SWP001 territory
  const RegionFacts rf = analyze_regions(p);
  EXPECT_FALSE(rf.protocol_ok);
  EXPECT_TRUE(rf.findings.empty());
}

TEST(Regions, AnnotatedDoubleBufferPipelineIsClean) {
  // The Fig. 5 rotation with parity-disjoint buffers: in0 [0,1k),
  // in1 [1k,2k); every chunk reads the buffer its wait just landed.
  sim::CpeProgram p;
  const std::uint32_t buf[2] = {0, 1024};
  p.dma(req(), 0).note_last_spm(sim::SpmAccessKind::kDmaDst, buf[0],
                                buf[0] + 1024);
  const int chunks = 4;
  for (int c = 0; c < chunks; ++c) {
    const int cur = c % 2;
    if (c + 1 < chunks) {
      p.dma(req(), 1 - cur)
          .note_last_spm(sim::SpmAccessKind::kDmaDst, buf[1 - cur],
                         buf[1 - cur] + 1024);
    }
    p.dma_wait(cur);
    p.compute(0, 16).note_last_spm(sim::SpmAccessKind::kComputeRead,
                                   buf[cur], buf[cur] + 1024);
  }
  const RegionFacts rf = analyze_regions(p);
  EXPECT_TRUE(rf.protocol_ok);
  EXPECT_TRUE(rf.has_notes);
  EXPECT_TRUE(rf.findings.empty()) << rf.findings.size() << " findings";
  EXPECT_GT(rf.solver_iterations, 0u);
}

TEST(Regions, ComputeTouchingInFlightGetIsReported) {
  sim::CpeProgram p;
  p.dma(req(), 0).note_last_spm(sim::SpmAccessKind::kDmaDst, 0, 1024);
  p.compute(0, 4).note_last_spm(sim::SpmAccessKind::kComputeRead, 512, 640);
  p.dma_wait(0);
  const RegionFacts rf = analyze_regions(p);
  ASSERT_FALSE(rf.findings.empty());
  const auto& f = rf.findings.front();
  EXPECT_EQ(f.kind, RegionFinding::Kind::kComputeDmaOverlap);
  EXPECT_EQ(f.op, 1u);
  EXPECT_EQ(f.handle, 0);
  EXPECT_EQ(f.range.lo, 512u);
  EXPECT_EQ(f.range.hi, 640u);
}

TEST(Regions, FlightHeldAcrossThreePhasesLeaks) {
  sim::CpeProgram p;
  p.dma(req(), 0);
  p.compute(0, 4).barrier().compute(0, 4).barrier().compute(0, 4);
  p.dma_wait(0);
  const RegionFacts rf = analyze_regions(p);
  ASSERT_EQ(rf.findings.size(), 1u);
  EXPECT_EQ(rf.findings[0].kind, RegionFinding::Kind::kHandleLeak);
  EXPECT_EQ(rf.findings[0].phases, 3);

  // One fewer phase is the healthy Fig. 5 rotation depth.
  sim::CpeProgram ok;
  ok.dma(req(), 0);
  ok.compute(0, 4).barrier().compute(0, 4);
  ok.dma_wait(0);
  EXPECT_TRUE(analyze_regions(ok).findings.empty());
}

}  // namespace
}  // namespace swperf::analysis::dataflow
