// Triggering + clean fixture pairs for every SWA dataflow code, plus the
// cleanliness sweeps the codes are held to: the whole kernel suite (both
// scales, tuned launches) and the example applications' kernels must carry
// no SWA finding above note severity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>

#include "analysis/checker.h"
#include "isa/block.h"
#include "kernels/suite.h"
#include "sim/program.h"
#include "swacc/lower.h"

namespace swperf::analysis {
namespace {

const sw::ArchParams kArch = sw::ArchParams::sw26010();

bool has_code(const Diagnostics& diags, const std::string& code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

Severity severity_of(const Diagnostics& diags, const std::string& code) {
  for (const auto& d : diags) {
    if (d.code == code) return d.severity;
  }
  ADD_FAILURE() << code << " not found";
  return Severity::kNote;
}

mem::DmaRequest req(std::uint64_t bytes = 1024) {
  return mem::DmaRequest::contiguous(bytes);
}

std::string safe_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

sim::KernelBinary one_block_binary() {
  isa::BlockBuilder b("body");
  const auto x = b.spm_load();
  b.spm_store(b.fadd(x, x));
  sim::KernelBinary bin;
  bin.add_block(std::move(b).build());
  return bin;
}

Diagnostics check(const std::vector<sim::CpeProgram>& progs) {
  return check_program(one_block_binary(), progs, kArch);
}

// ---- SWA001: compute touches an in-flight get destination -----------------

TEST(SwaChecks, Swa001FiresOnComputeReadingLandingBuffer) {
  sim::CpeProgram p;
  p.dma(req(), 0).note_last_spm(sim::SpmAccessKind::kDmaDst, 0, 1024);
  p.compute(0, 4).note_last_spm(sim::SpmAccessKind::kComputeRead, 512, 640);
  p.dma_wait(0);
  const auto diags = check({p});
  ASSERT_TRUE(has_code(diags, "SWA001"));
  EXPECT_EQ(severity_of(diags, "SWA001"), Severity::kError);
}

TEST(SwaChecks, Swa001CleanWhenComputeWaitsFirst) {
  sim::CpeProgram p;
  p.dma(req(), 0).note_last_spm(sim::SpmAccessKind::kDmaDst, 0, 1024);
  p.dma_wait(0);
  p.compute(0, 4).note_last_spm(sim::SpmAccessKind::kComputeRead, 512, 640);
  EXPECT_FALSE(has_code(check({p}), "SWA001"));
}

// ---- SWA002: SPM annotation beyond the scratchpad --------------------------

TEST(SwaChecks, Swa002FiresOnOutOfBoundsRange) {
  sim::CpeProgram p;
  p.compute(0, 1).note_last_spm(sim::SpmAccessKind::kComputeWrite,
                                kArch.spm_bytes - 32, kArch.spm_bytes + 32);
  const auto diags = check({p});
  ASSERT_TRUE(has_code(diags, "SWA002"));
  EXPECT_EQ(severity_of(diags, "SWA002"), Severity::kError);
}

TEST(SwaChecks, Swa002CleanUpToTheLastByte) {
  sim::CpeProgram p;
  p.dma(req()).note_last_spm(sim::SpmAccessKind::kDmaDst,
                             kArch.spm_bytes - 64, kArch.spm_bytes);
  p.compute(0, 1).note_last_spm(sim::SpmAccessKind::kComputeRead,
                                kArch.spm_bytes - 64, kArch.spm_bytes);
  EXPECT_FALSE(has_code(check({p}), "SWA002"));
}

// ---- SWA003: dead store ----------------------------------------------------

TEST(SwaChecks, Swa003FiresOnComputeWriteNeverRead) {
  sim::CpeProgram p;
  p.compute(0, 1).note_last_spm(sim::SpmAccessKind::kComputeWrite, 0, 256);
  const auto diags = check({p});
  ASSERT_TRUE(has_code(diags, "SWA003"));
  EXPECT_EQ(severity_of(diags, "SWA003"), Severity::kWarning);
}

TEST(SwaChecks, Swa003CleanWhenTheWriteFeedsACopyOut) {
  sim::CpeProgram p;
  p.compute(0, 1).note_last_spm(sim::SpmAccessKind::kComputeWrite, 0, 256);
  p.dma(req(256)).note_last_spm(sim::SpmAccessKind::kDmaSrc, 0, 256);
  EXPECT_FALSE(has_code(check({p}), "SWA003"));
}

// ---- SWA004: overlapping concurrent transfers ------------------------------

TEST(SwaChecks, Swa004FiresOnTwoGetsIntoOverlappingRanges) {
  sim::CpeProgram p;
  p.dma(req(), 0).note_last_spm(sim::SpmAccessKind::kDmaDst, 0, 1024);
  p.dma(req(), 1).note_last_spm(sim::SpmAccessKind::kDmaDst, 512, 1536);
  p.dma_wait(0).dma_wait(1);
  p.compute(0, 1).note_last_spm(sim::SpmAccessKind::kComputeRead, 0, 1536);
  const auto diags = check({p});
  ASSERT_TRUE(has_code(diags, "SWA004"));
  EXPECT_EQ(severity_of(diags, "SWA004"), Severity::kError);
}

TEST(SwaChecks, Swa004CleanOnDisjointConcurrentGets) {
  sim::CpeProgram p;
  p.dma(req(), 0).note_last_spm(sim::SpmAccessKind::kDmaDst, 0, 1024);
  p.dma(req(), 1).note_last_spm(sim::SpmAccessKind::kDmaDst, 1024, 2048);
  p.dma_wait(0).dma_wait(1);
  p.compute(0, 1).note_last_spm(sim::SpmAccessKind::kComputeRead, 0, 2048);
  EXPECT_FALSE(has_code(check({p}), "SWA004"));
}

// ---- SWA005: read of never-defined SPM bytes -------------------------------

TEST(SwaChecks, Swa005FiresOnReadWithNoReachingDefinition) {
  sim::CpeProgram p;
  p.compute(0, 1).note_last_spm(sim::SpmAccessKind::kComputeRead, 0, 256);
  const auto diags = check({p});
  ASSERT_TRUE(has_code(diags, "SWA005"));
  EXPECT_EQ(severity_of(diags, "SWA005"), Severity::kWarning);
}

TEST(SwaChecks, Swa005CleanWhenABlockingGetDefinesTheBytes) {
  sim::CpeProgram p;
  p.dma(req(256)).note_last_spm(sim::SpmAccessKind::kDmaDst, 0, 256);
  p.compute(0, 1).note_last_spm(sim::SpmAccessKind::kComputeRead, 0, 256);
  EXPECT_FALSE(has_code(check({p}), "SWA005"));
}

// ---- SWA006: unreferenced binary block -------------------------------------

TEST(SwaChecks, Swa006NotesAnUnreferencedBlock) {
  isa::BlockBuilder extra("never_called");
  extra.spm_store(extra.spm_load());
  auto bin = one_block_binary();
  bin.add_block(std::move(extra).build());
  sim::CpeProgram p;
  p.compute(0, 8);
  const auto diags = check_program(bin, {p}, kArch);
  ASSERT_TRUE(has_code(diags, "SWA006"));
  EXPECT_EQ(severity_of(diags, "SWA006"), Severity::kNote);
  EXPECT_TRUE(clean(diags)) << "SWA006 must not break cleanliness";
}

TEST(SwaChecks, Swa006CleanWhenEveryBlockIsReferenced) {
  auto bin = one_block_binary();
  sim::CpeProgram p;
  p.compute(0, 8);
  EXPECT_FALSE(has_code(check_program(bin, {p}, kArch), "SWA006"));
}

// ---- SWA007: back-to-back barriers -----------------------------------------

TEST(SwaChecks, Swa007FiresOnAdjacentBarriersOnEveryCpe) {
  sim::CpeProgram a;
  a.compute(0, 4).barrier().barrier();
  sim::CpeProgram b;
  b.compute(0, 2).barrier().barrier();
  const auto diags = check({a, b});
  ASSERT_TRUE(has_code(diags, "SWA007"));
  EXPECT_EQ(severity_of(diags, "SWA007"), Severity::kWarning);
}

TEST(SwaChecks, Swa007CleanWhenAnyCpeWorksBetweenBarriers) {
  sim::CpeProgram a;
  a.compute(0, 4).barrier().barrier();
  sim::CpeProgram b;
  b.barrier();
  b.compute(0, 2).barrier();  // this CPE has real work between the two
  EXPECT_FALSE(has_code(check({a, b}), "SWA007"));
}

// ---- SWA008: DMA handle held across too many phases ------------------------

TEST(SwaChecks, Swa008FiresOnFlightCrossingThreeComputePhases) {
  sim::CpeProgram p;
  p.dma(req(), 0);
  p.compute(0, 4).barrier().compute(0, 4).barrier().compute(0, 4);
  p.dma_wait(0);
  const auto diags = check({p});
  ASSERT_TRUE(has_code(diags, "SWA008"));
  EXPECT_EQ(severity_of(diags, "SWA008"), Severity::kWarning);
}

TEST(SwaChecks, Swa008CleanAtTheFigFiveRotationDepth) {
  sim::CpeProgram p;
  p.dma(req(), 0);
  p.compute(0, 4).barrier().compute(0, 4);
  p.dma_wait(0);
  EXPECT_FALSE(has_code(check({p}), "SWA008"));
}

// ---- Cleanliness sweeps ----------------------------------------------------

void expect_swa_clean(const Diagnostics& diags, const std::string& what) {
  for (const auto& d : diags) {
    if (d.code.compare(0, 3, "SWA") == 0 && d.severity != Severity::kNote) {
      ADD_FAILURE() << what << ": " << d.to_string();
    }
  }
}

class SuiteSwaClean : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteSwaClean, TunedLaunchCarriesNoSwaFindingAboveNote) {
  for (const auto scale : {kernels::Scale::kFull, kernels::Scale::kSmall}) {
    const auto spec = kernels::make(GetParam(), scale);
    expect_swa_clean(check_all(spec.desc, spec.tuned, kArch),
                     GetParam() + (scale == kernels::Scale::kFull
                                       ? " (full)"
                                       : " (small)"));
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SuiteSwaClean,
                         ::testing::ValuesIn(kernels::suite_names()),
                         safe_name);

// The kernels the example applications construct inline (quickstart's
// vecadd, the advisor's jacobi2d, the porting guide's hotspot halo port) at
// the launches the examples use.
TEST(ExamplesSwaClean, QuickstartVecadd) {
  isa::BlockBuilder body("vecadd");
  const auto a = body.spm_load();
  const auto b = body.spm_load();
  body.spm_store(body.fadd(a, b));
  body.loop_overhead(2);
  swacc::KernelDesc kernel;
  kernel.name = "vecadd";
  kernel.n_outer = 1 << 20;
  kernel.inner_iters = 1;
  kernel.body = std::move(body).build();
  kernel.arrays = {
      {"A", swacc::Dir::kIn, swacc::Access::kContiguous, 8},
      {"B", swacc::Dir::kIn, swacc::Access::kContiguous, 8},
      {"C", swacc::Dir::kOut, swacc::Access::kContiguous, 8},
  };
  swacc::LaunchParams params;
  params.tile = 512;
  params.unroll = 4;
  expect_swa_clean(check_all(kernel, params, kArch), "quickstart vecadd");
}

TEST(ExamplesSwaClean, AdvisorJacobi2d) {
  isa::BlockBuilder b("jacobi");
  const auto c = b.spm_load();
  const auto n = b.spm_load();
  const auto s = b.spm_load();
  const auto quarter = b.reg();
  auto sum = b.fadd(n, s);
  sum = b.fadd(sum, c);
  sum = b.fadd(sum, c);
  b.spm_store(b.fmul(sum, quarter));
  b.loop_overhead(2);
  swacc::KernelDesc k;
  k.name = "jacobi2d";
  k.n_outer = 2048;
  k.inner_iters = 2048;
  k.body = std::move(b).build();
  k.arrays = {
      {"grid_in", swacc::Dir::kIn, swacc::Access::kContiguous, 4ull * 2048},
      {"grid_out", swacc::Dir::kOut, swacc::Access::kContiguous,
       4ull * 2048},
  };
  k.dma_min_tile = 1;
  swacc::LaunchParams p;
  p.tile = 2;
  expect_swa_clean(check_all(k, p, kArch), "advisor jacobi2d");
}

TEST(ExamplesSwaClean, PortValidationHotspotHalo) {
  swacc::KernelDesc port;
  isa::BlockBuilder b("hotspot_ns");
  const auto x = b.spm_load();
  b.spm_store(b.fadd(x, x));
  port.name = "hotspot_ns";
  port.n_outer = 256;
  port.inner_iters = 256;
  port.body = std::move(b).build();
  const std::uint64_t row = sizeof(double) * 256;
  port.arrays = {
      {"halo", swacc::Dir::kIn, swacc::Access::kContiguous, 3 * row},
      {"power", swacc::Dir::kIn, swacc::Access::kContiguous, row},
      {"out", swacc::Dir::kOut, swacc::Access::kContiguous, row},
  };
  port.dma_min_tile = 1;
  for (const std::uint64_t tile : {1u, 2u, 5u}) {
    swacc::LaunchParams lp;
    lp.tile = tile;
    expect_swa_clean(check_all(port, lp, kArch),
                     "hotspot halo tile " + std::to_string(tile));
  }
}

}  // namespace
}  // namespace swperf::analysis
