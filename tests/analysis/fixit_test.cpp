// The SWD006 fix-it consistency contract: the suggestion the checker
// attaches is *validated* — applying it clears SWD006 and introduces no
// finding the original launch did not already carry; when SWD006 was the
// only finding, the suggested launch passes the full checker clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <utility>

#include "analysis/checker.h"
#include "isa/block.h"
#include "kernels/suite.h"
#include "swacc/kernel.h"

namespace swperf::analysis {
namespace {

const sw::ArchParams kArch = sw::ArchParams::sw26010();

std::string safe_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

swacc::KernelDesc vecadd_kernel() {
  isa::BlockBuilder body("vecadd");
  const auto a = body.spm_load();
  const auto b = body.spm_load();
  body.spm_store(body.fadd(a, b));
  body.loop_overhead(2);
  swacc::KernelDesc k;
  k.name = "vecadd";
  k.n_outer = 4096;
  k.inner_iters = 1;
  k.body = std::move(body).build();
  k.arrays = {{"A", swacc::Dir::kIn, swacc::Access::kContiguous, 8},
              {"B", swacc::Dir::kIn, swacc::Access::kContiguous, 8},
              {"C", swacc::Dir::kOut, swacc::Access::kContiguous, 8}};
  return k;
}

std::multiset<std::pair<std::string, int>> signature(
    const Diagnostics& diags) {
  std::multiset<std::pair<std::string, int>> sig;
  for (const auto& d : diags) {
    if (d.code == "SWD006") continue;
    sig.insert({d.code, static_cast<int>(d.severity)});
  }
  return sig;
}

bool has_code(const Diagnostics& diags, const std::string& code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

TEST(Swd006Fixit, OnlySwd006LaunchBecomesFullyClean) {
  const auto k = vecadd_kernel();
  swacc::LaunchParams p;
  p.tile = 256;  // 4096 / 256 = 16 chunks: 48 of 64 CPEs idle
  p.requested_cpes = 64;

  const auto before = check_launch(k, p, kArch);
  ASSERT_TRUE(has_code(before, "SWD006"));
  ASSERT_EQ(before.size(), 1u) << "fixture must carry only SWD006";

  const auto sug = swd006_suggestion(k, p, kArch);
  ASSERT_TRUE(sug.valid);
  EXPECT_EQ(sug.params.tile, 64u);  // n_outer / requested_cpes
  EXPECT_TRUE(clean(check_all(k, sug.params, kArch)))
      << "applying the suggestion must pass the full checker clean";
}

TEST(Swd006Fixit, SuggestionIsAttachedAsTheDiagnosticFixit) {
  const auto k = vecadd_kernel();
  swacc::LaunchParams p;
  p.tile = 256;
  p.requested_cpes = 64;
  const auto diags = check_launch(k, p, kArch);
  for (const auto& d : diags) {
    if (d.code != "SWD006") continue;
    EXPECT_NE(d.fixit.find("reduce tile to <= 64"), std::string::npos)
        << d.fixit;
    return;
  }
  FAIL() << "SWD006 not emitted";
}

TEST(Swd006Fixit, InvalidWhenNoCpesAreIdle) {
  const auto k = vecadd_kernel();
  swacc::LaunchParams p;
  p.tile = 64;  // exactly 64 chunks: all CPEs busy
  p.requested_cpes = 64;
  EXPECT_FALSE(swd006_suggestion(k, p, kArch).valid);
  EXPECT_FALSE(has_code(check_launch(k, p, kArch), "SWD006"));
}

// Suite-wide: wherever an idling launch yields a valid suggestion, the
// suggested launch clears SWD006 and its findings are a subset of the
// original's.
class Swd006Consistency : public ::testing::TestWithParam<std::string> {};

TEST_P(Swd006Consistency, AppliedSuggestionNeverAddsFindings) {
  const auto spec = kernels::make(GetParam());
  swacc::LaunchParams p = spec.tuned;
  p.requested_cpes = 64;
  p.tile = std::max<std::uint64_t>(1, spec.desc.n_outer / 4);  // ~4 chunks

  const auto before = check_launch(spec.desc, p, kArch);
  const auto sug = swd006_suggestion(spec.desc, p, kArch);
  if (!has_code(before, "SWD006")) {
    EXPECT_FALSE(sug.valid);
    return;
  }
  if (!sug.valid) return;  // fallback fix-it path: nothing to apply

  const auto after = check_launch(spec.desc, sug.params, kArch);
  EXPECT_FALSE(has_code(after, "SWD006")) << GetParam();
  const auto base = signature(before);
  const auto now = signature(after);
  EXPECT_TRUE(
      std::includes(base.begin(), base.end(), now.begin(), now.end()))
      << GetParam() << ": suggestion introduced new findings";
}

INSTANTIATE_TEST_SUITE_P(AllKernels, Swd006Consistency,
                         ::testing::ValuesIn(kernels::suite_names()),
                         safe_name);

}  // namespace
}  // namespace swperf::analysis
