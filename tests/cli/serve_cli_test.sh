#!/bin/sh
# Exit-code and wire contract of `swperf serve`:
#   * background TCP server + SIGINT  -> graceful drain, exit 0
#   * background TCP server + SIGTERM -> graceful drain, exit 0
#   * bad flags (port out of range, zero queue depth, unknown flag,
#     positional operand)             -> exit 2
#   * --stdio: a malformed line gets a structured JSON error reply and the
#     connection survives — a later valid request on the same stream is
#     still served; every reply line is valid JSON.
#
# Usage: serve_cli_test.sh <path-to-swperf>
set -u

swperf="$1"
failures=0

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

fail() {
    echo "FAIL: $1" >&2
    failures=$((failures + 1))
}

# Validates that stdin is one JSON object per line. Prefers python3, falls
# back to jq, degrades to a shape check so the test runs on bare images.
json_valid() {
    if command -v python3 >/dev/null 2>&1; then
        python3 -c '
import json, sys
lines = [l for l in sys.stdin if l.strip()]
assert lines, "no output"
for l in lines:
    json.loads(l)
'
    elif command -v jq >/dev/null 2>&1; then
        jq -e . >/dev/null
    else
        grep -q '{'
    fi
}

# Starts `swperf serve --port 0` in the background, waits for the
# listening banner, sends $1 (INT or TERM), and checks the exit code.
drain_test() {
    sig="$1"
    log="$tmpdir/serve_$sig.jsonl"
    "$swperf" serve --port 0 > "$log" 2>/dev/null &
    pid=$!
    # Wait (up to ~5s) until the server announces its port; killing before
    # the banner would race server start-up, not test the drain.
    i=0
    while [ $i -lt 50 ]; do
        grep -q '"listening"' "$log" 2>/dev/null && break
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
        i=$((i + 1))
    done
    grep -q '"listening"' "$log" || fail "serve never announced a port (SIG$sig)"
    kill -s "$sig" "$pid"
    wait "$pid"
    status=$?
    [ "$status" -eq 0 ] || fail "SIG$sig drain exited $status, expected 0"
    json_valid < "$log" || fail "serve banner is not valid JSON: $(cat "$log")"
}

# 1. Graceful drain on SIGINT and SIGTERM: exit 0, banner is valid JSON.
drain_test INT
drain_test TERM

# 2. Bad invocations are usage errors: exit 2, nothing listening.
"$swperf" serve --port 99999 >/dev/null 2>&1
[ $? -eq 2 ] || fail "serve --port 99999 should exit 2"
"$swperf" serve --queue-depth 0 >/dev/null 2>&1
[ $? -eq 2 ] || fail "serve --queue-depth 0 should exit 2"
"$swperf" serve --no-such-flag >/dev/null 2>&1
[ $? -eq 2 ] || fail "serve with an unknown flag should exit 2"
"$swperf" serve vecadd >/dev/null 2>&1
[ $? -eq 2 ] || fail "serve with a positional operand should exit 2"

# 3. Malformed round-trip over --stdio: the bad line gets a structured
#    error, the connection survives, and the later request is served.
out=$(printf '%s\n' \
    '{"id": 1, "kernel": "vecadd", "scale": "small", "stages": ["check"]}' \
    'this is not json' \
    '{"id": 2, "kernel": "vecadd", "scale": "small", "stages": ["model"]}' \
    | "$swperf" serve --stdio)
status=$?
[ "$status" -eq 0 ] || fail "--stdio run exited $status, expected 0"
printf '%s\n' "$out" | json_valid || fail "--stdio replies are not valid JSON: $out"
printf '%s\n' "$out" | grep -q '"malformed"' \
    || fail "malformed line got no structured error: $out"
printf '%s\n' "$out" | grep -q '"id":2' \
    || fail "request after the malformed line was not served: $out"
printf '%s\n' "$out" | grep -q '"ok":true' \
    || fail "no successful reply in --stdio output: $out"
n_replies=$(printf '%s\n' "$out" | grep -c '[^[:space:]]')
[ "$n_replies" -eq 3 ] || fail "expected 3 reply lines, got $n_replies: $out"

if [ "$failures" -ne 0 ]; then
    echo "$failures check(s) failed" >&2
    exit 1
fi
echo "swperf serve exit-code and wire contract holds"
