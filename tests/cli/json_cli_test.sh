#!/bin/sh
# The --json and `swperf eval` contract across every subcommand:
#   * every --json surface emits parser-valid JSON (one document per line)
#   * strict option parsing: non-numeric / trailing-garbage values exit 2
#   * eval: 3-entry batch -> exit 0, one JSON result per entry;
#     a failing entry -> exit 1 (batch continues); malformed or
#     non-array requests -> exit 2
#
# Usage: json_cli_test.sh <path-to-swperf>
set -u

swperf="$1"
failures=0
workdir="${TMPDIR:-/tmp}/swperf_json_cli_$$"
mkdir -p "$workdir"
trap 'rm -rf "$workdir"' EXIT

fail() {
    echo "FAIL: $1" >&2
    failures=$((failures + 1))
}

# Validates that stdin is one JSON document per line. Prefers python3,
# falls back to jq, degrades to a shape check on bare images.
json_valid() {
    if command -v python3 >/dev/null 2>&1; then
        python3 -c '
import json, sys
lines = [l for l in sys.stdin if l.strip()]
assert lines, "no output"
for l in lines:
    json.loads(l)
'
    elif command -v jq >/dev/null 2>&1; then
        jq -e . >/dev/null
    else
        grep -q '[{[]'
    fi
}

# Expected line count of stdin (used to pin one-result-per-entry).
line_count() {
    grep -c . || true
}

# 1. Every --json subcommand emits valid JSON and exits 0.
for cmd in "list" "report vecadd --small" "simulate vecadd --small" \
           "tune vecadd --small" "timeline vecadd --small" \
           "explain vecadd --small" "suite --small" "calibrate" \
           "check vecadd" "check --list-codes"; do
    # shellcheck disable=SC2086
    out=$("$swperf" $cmd --json)
    status=$?
    [ "$status" -eq 0 ] || fail "swperf $cmd --json exited $status"
    printf '%s\n' "$out" | json_valid || \
        fail "swperf $cmd --json emitted invalid JSON"
done

# 1b. --bnb tuning emits valid JSON too (branch-and-bound path).
out=$("$swperf" tune vecadd --small --bnb --json)
status=$?
[ "$status" -eq 0 ] || fail "tune --bnb --json exited $status"
printf '%s\n' "$out" | json_valid || fail "tune --bnb --json invalid JSON"

# 1c. --deterministic-json: zeroed timing fields make repeated runs
#     byte-identical — with and without --bnb.
"$swperf" tune vecadd --small --deterministic-json > "$workdir/det1.json"
"$swperf" tune vecadd --small --deterministic-json > "$workdir/det2.json"
cmp -s "$workdir/det1.json" "$workdir/det2.json" || \
    fail "tune --deterministic-json output is not byte-stable"
json_valid < "$workdir/det1.json" || \
    fail "tune --deterministic-json emitted invalid JSON"
"$swperf" tune vecadd --small --bnb --deterministic-json \
    > "$workdir/det3.json"
"$swperf" tune vecadd --small --bnb --deterministic-json \
    > "$workdir/det4.json"
cmp -s "$workdir/det3.json" "$workdir/det4.json" || \
    fail "tune --bnb --deterministic-json output is not byte-stable"
grep -q '"tuning_seconds":0' "$workdir/det1.json" || \
    fail "--deterministic-json should zero tuning_seconds"

# 1d. optimize: valid JSON on --json, byte-stable provenance on
#     --deterministic-json (the golden-fixture contract, exercised through
#     the real CLI), and the eval batch stage.
out=$("$swperf" optimize vecadd --small --json)
status=$?
[ "$status" -eq 0 ] || fail "optimize --json exited $status"
printf '%s\n' "$out" | json_valid || fail "optimize --json invalid JSON"
"$swperf" optimize vecadd --small --deterministic-json > "$workdir/opt1.json"
"$swperf" optimize vecadd --small --deterministic-json > "$workdir/opt2.json"
cmp -s "$workdir/opt1.json" "$workdir/opt2.json" || \
    fail "optimize --deterministic-json output is not byte-stable"
grep -q '"host_seconds":0' "$workdir/opt1.json" || \
    fail "optimize --deterministic-json should zero host_seconds"
grep -q '"steps":\[' "$workdir/opt1.json" || \
    fail "optimize provenance log should carry a steps array"

# 1e. explain: deterministic artifact (no host-dependent fields at all,
#     so --json alone is already byte-stable), carrying the label; the
#     timeline --json surface carries the causal event stream.
"$swperf" explain vecadd --small --json > "$workdir/exp1.json"
"$swperf" explain vecadd --small --deterministic-json > "$workdir/exp2.json"
cmp -s "$workdir/exp1.json" "$workdir/exp2.json" || \
    fail "explain --json output is not byte-stable"
grep -q '"bottleneck":"' "$workdir/exp1.json" || \
    fail "explain artifact should carry a bottleneck label"
grep -q '"critical_path":{' "$workdir/exp1.json" || \
    fail "explain artifact should carry the critical path"
"$swperf" timeline vecadd --small --json > "$workdir/tl.json"
grep -q '"events":\[' "$workdir/tl.json" || \
    fail "timeline --json should carry the causal event stream"
grep -q '"lanes":\[' "$workdir/tl.json" || \
    fail "timeline --json should carry per-lane utilization"

# 1f. simulate --time: the engine-throughput surface carries the
#     contended fast-path counters in both renderings.
out=$("$swperf" simulate vecadd --small --time --json)
status=$?
[ "$status" -eq 0 ] || fail "simulate --time --json exited $status"
printf '%s\n' "$out" | json_valid || fail "simulate --time --json invalid"
for field in batched_grants batched_transactions train_arrivals_absorbed \
             mc_enqueued mc_max_queued; do
    printf '%s\n' "$out" | grep -q "\"$field\":" || \
        fail "simulate --time --json should carry $field"
done
"$swperf" simulate vecadd --small --time | grep -q 'fast path' || \
    fail "simulate --time text should carry the fast-path counter line"
"$swperf" simulate vecadd --small --time | grep -q 'mem queue' || \
    fail "simulate --time text should carry the memory-queue line"

# 1g. simulate --chip: whole-chip scenarios. Valid JSON, byte-stable
#     across repeated runs and across --jobs values, sane text table,
#     exit 2 on missing/malformed files, exit 1 on schema errors.
cat > "$workdir/chip.json" <<'EOF'
{"core_groups":4,"jobs":[
  {"name":"va0","kernel":"vecadd","scale":"small"},
  {"name":"va1","kernel":"vecadd","scale":"small"},
  {"kernel":"hotspot","scale":"small"},
  {"kernel":"pathfinder","scale":"small"}]}
EOF
"$swperf" simulate --chip "$workdir/chip.json" --json > "$workdir/chip1.json"
status=$?
[ "$status" -eq 0 ] || fail "simulate --chip --json exited $status"
json_valid < "$workdir/chip1.json" || fail "simulate --chip --json invalid"
grep -q '"schema":"swperf.chip_result.v1"' "$workdir/chip1.json" || \
    fail "chip result should carry its schema tag"
grep -q '"jobs":\[' "$workdir/chip1.json" || \
    fail "chip result should carry per-job windows"
"$swperf" simulate --chip "$workdir/chip.json" --json > "$workdir/chip2.json"
cmp -s "$workdir/chip1.json" "$workdir/chip2.json" || \
    fail "simulate --chip --json is not byte-stable across runs"
"$swperf" simulate --chip "$workdir/chip.json" --json --jobs 2 \
    > "$workdir/chip3.json"
cmp -s "$workdir/chip1.json" "$workdir/chip3.json" || \
    fail "simulate --chip --json should not depend on --jobs"
"$swperf" simulate --chip "$workdir/chip.json" | grep -q 'makespan' || \
    fail "simulate --chip text should carry the makespan table"
"$swperf" simulate --chip "$workdir/nonexistent.json" >/dev/null 2>&1
[ $? -eq 2 ] || fail "simulate --chip with a missing file should exit 2"
printf 'not json' > "$workdir/chip_bad.json"
"$swperf" simulate --chip "$workdir/chip_bad.json" >/dev/null 2>&1
[ $? -eq 2 ] || fail "simulate --chip on malformed JSON should exit 2"
printf '{"bogus":1,"jobs":[{"kernel":"vecadd"}]}' > "$workdir/chip_schema.json"
"$swperf" simulate --chip "$workdir/chip_schema.json" >/dev/null 2>&1
[ $? -eq 1 ] || fail "simulate --chip on a schema error should exit 1"

# 2. Strict number parsing: garbage and trailing-garbage values are usage
#    errors (exit 2), not silently-zero launches.
"$swperf" simulate vecadd --tile garbage >/dev/null 2>&1
[ $? -eq 2 ] || fail "--tile garbage should exit 2"
"$swperf" simulate vecadd --tile 64x >/dev/null 2>&1
[ $? -eq 2 ] || fail "--tile 64x should exit 2"
"$swperf" simulate vecadd --tile -- -3 >/dev/null 2>&1
[ $? -eq 2 ] || fail "non-numeric --tile should exit 2"
"$swperf" tune vecadd --small --jobs 1.5 >/dev/null 2>&1
[ $? -eq 2 ] || fail "--jobs 1.5 should exit 2"
"$swperf" optimize vecadd --beam garbage >/dev/null 2>&1
[ $? -eq 2 ] || fail "--beam garbage should exit 2"
"$swperf" optimize vecadd --max-steps 4x >/dev/null 2>&1
[ $? -eq 2 ] || fail "--max-steps 4x should exit 2"
"$swperf" optimize >/dev/null 2>&1
[ $? -eq 2 ] || fail "optimize without a kernel should exit 2"

# 3. eval: a 4-entry batch over stdin -> exit 0 and exactly 4 JSON lines.
req='[{"kernel":"vecadd","scale":"small"},
      {"kernel":"kmeans","scale":"small","stages":["check","model"]},
      {"kernel":"vecadd","scale":"small","params":{"tile":64},
       "stages":["sim"]},
      {"kernel":"vecadd","scale":"small","stages":["optimize"]},
      {"kernel":"vecadd","scale":"small","stages":["explain"]}]'
out=$(printf '%s' "$req" | "$swperf" eval)
status=$?
[ "$status" -eq 0 ] || fail "5-entry eval batch exited $status, expected 0"
printf '%s\n' "$out" | json_valid || fail "eval batch emitted invalid JSON"
n=$(printf '%s\n' "$out" | line_count)
[ "$n" -eq 5 ] || fail "eval batch emitted $n lines, expected 5"
printf '%s\n' "$out" | grep -q '"optimize":{' || \
    fail "eval optimize stage should emit an optimize report"
printf '%s\n' "$out" | grep -q '"explain":{' || \
    fail "eval explain stage should emit an explanation"

# 4. eval reads from a file argument too.
printf '%s' "$req" > "$workdir/req.json"
"$swperf" eval "$workdir/req.json" >/dev/null
[ $? -eq 0 ] || fail "eval from file should exit 0"

# 5. A failing entry: still one JSON line per entry, exit 1.
out=$(printf '[{"kernel":"vecadd","scale":"small","stages":["model"]},{"kernel":"nosuch"}]' | "$swperf" eval)
status=$?
[ "$status" -eq 1 ] || fail "eval with bad entry exited $status, expected 1"
printf '%s\n' "$out" | json_valid || fail "failing eval emitted invalid JSON"
printf '%s\n' "$out" | grep -q '"ok":false' || \
    fail "failing entry should report \"ok\":false"

# 5b. eval chip entries: {"chip": {...}} runs a whole-chip scenario and
#     emits a chip result; a chip entry mixed with kernel fields fails
#     that entry (exit 1) without killing the batch.
req_chip='[{"chip":{"jobs":[{"kernel":"vecadd","scale":"small"},{"kernel":"hotspot","scale":"small"}]}}]'
out=$(printf '%s' "$req_chip" | "$swperf" eval)
status=$?
[ "$status" -eq 0 ] || fail "eval chip entry exited $status, expected 0"
printf '%s\n' "$out" | json_valid || fail "eval chip entry invalid JSON"
printf '%s\n' "$out" | grep -q '"chip":{' || \
    fail "eval chip entry should emit a chip result"
printf '%s\n' "$out" | grep -q '"schema":"swperf.chip_result.v1"' || \
    fail "eval chip result should carry the chip schema tag"
out=$(printf '[{"chip":{"jobs":[{"kernel":"vecadd"}]},"kernel":"vecadd"}]' \
      | "$swperf" eval)
[ $? -eq 1 ] || fail "chip entry with kernel fields should exit 1"
printf '%s\n' "$out" | grep -q '"ok":false' || \
    fail "mixed chip entry should report \"ok\":false"

# 6. Malformed requests are usage errors (exit 2), with nothing on stdout.
out=$(printf 'not json' | "$swperf" eval 2>/dev/null)
[ $? -eq 2 ] || fail "malformed eval request should exit 2"
[ -z "$out" ] || fail "malformed eval request should print no results"
printf '{"kernel":"vecadd"}' | "$swperf" eval >/dev/null 2>&1
[ $? -eq 2 ] || fail "non-array eval request should exit 2"
"$swperf" eval "$workdir/does_not_exist.json" >/dev/null 2>&1
[ $? -eq 2 ] || fail "missing eval request file should exit 2"

if [ "$failures" -ne 0 ]; then
    echo "$failures check(s) failed" >&2
    exit 1
fi
echo "swperf --json and eval contracts hold"
