#!/bin/sh
# Exit-code and JSON contract of `swperf check` (the gap left by the
# swperf_check_suite ctest, which only covers the clean --Werror path):
#   * clean input            -> exit 0, valid JSON with --json
#   * warnings, no --Werror  -> exit 0 (warnings are not failures)
#   * warnings + --Werror    -> exit 1, still valid JSON on stdout
#
# Usage: check_cli_test.sh <path-to-swperf>
set -u

swperf="$1"
failures=0

fail() {
    echo "FAIL: $1" >&2
    failures=$((failures + 1))
}

# Validates that stdin is one JSON object per line. Prefers python3, falls
# back to jq, degrades to a shape check so the test runs on bare images.
json_valid() {
    if command -v python3 >/dev/null 2>&1; then
        python3 -c '
import json, sys
lines = [l for l in sys.stdin if l.strip()]
assert lines, "no output"
for l in lines:
    json.loads(l)
'
    elif command -v jq >/dev/null 2>&1; then
        jq -e . >/dev/null
    else
        grep -q '"diagnostics"'
    fi
}

# 1. Clean kernel: exit 0 and valid JSON.
out=$("$swperf" check vecadd --json)
status=$?
[ "$status" -eq 0 ] || fail "clean check exited $status, expected 0"
printf '%s\n' "$out" | json_valid || fail "clean check emitted invalid JSON: $out"

# 2. Warning-producing launch (tile 4 < dma_min_tile 16 -> SWD004), no
#    --Werror: warnings are reported but do not fail the run.
out=$("$swperf" check vecadd --tile 4 --json)
status=$?
[ "$status" -eq 0 ] || fail "warning without --Werror exited $status, expected 0"
printf '%s\n' "$out" | json_valid || fail "warning path emitted invalid JSON: $out"
printf '%s\n' "$out" | grep -q 'SWD004' || fail "expected SWD004 in: $out"

# 3. Same launch with --Werror: warnings are fatal, JSON still valid.
out=$("$swperf" check vecadd --tile 4 --Werror --json)
status=$?
[ "$status" -eq 1 ] || fail "warning with --Werror exited $status, expected 1"
printf '%s\n' "$out" | json_valid || fail "--Werror path emitted invalid JSON: $out"

# 4. The non-JSON paths agree on the exit codes.
"$swperf" check vecadd >/dev/null
[ $? -eq 0 ] || fail "clean text check should exit 0"
"$swperf" check vecadd --tile 4 --Werror >/dev/null
[ $? -eq 1 ] || fail "text check with --Werror on warnings should exit 1"

if [ "$failures" -ne 0 ]; then
    echo "$failures check(s) failed" >&2
    exit 1
fi
echo "swperf check exit-code contract holds"
