// Structural tests over every registered kernel: valid descriptions,
// SPM-feasible presets, end-to-end lowering and simulation.
#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "kernels/suite.h"
#include "kernels/wrf.h"
#include "sim/machine.h"
#include "sw/error.h"
#include "swacc/lower.h"
#include "swacc/validate.h"

namespace swperf::kernels {
namespace {

const sw::ArchParams kArch;

TEST(Suite, NamesAreUniqueAndResolvable) {
  const auto names = suite_names();
  EXPECT_GE(names.size(), 15u);
  const std::set<std::string> uniq(names.begin(), names.end());
  EXPECT_EQ(uniq.size(), names.size());
  for (const auto& n : names) {
    EXPECT_NO_THROW(make(n)) << n;
  }
  EXPECT_THROW(make("no-such-kernel"), sw::Error);
}

TEST(Suite, Table2KernelsAreRegistered) {
  const auto names = suite_names();
  for (const auto& n : table2_kernels()) {
    EXPECT_NE(std::find(names.begin(), names.end(), n), names.end()) << n;
  }
  EXPECT_EQ(table2_kernels().size(), 5u);  // the paper's five
}

class EveryKernel : public ::testing::TestWithParam<std::string> {
 protected:
  static std::string sanitize(std::string name) {
    for (auto& c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    return name;
  }
};

TEST_P(EveryKernel, DescriptionValidates) {
  for (const auto scale : {Scale::kSmall, Scale::kFull}) {
    const auto spec = make(GetParam(), scale);
    EXPECT_NO_THROW(spec.desc.validate());
    EXPECT_EQ(spec.desc.name, GetParam());
    EXPECT_FALSE(spec.notes.empty());
    // Pure-integer kernels (bfs, b+tree, pathfinder) have zero flops but
    // must still carry a non-empty compute body.
    EXPECT_FALSE(spec.desc.body.instrs.empty());
    EXPECT_GE(spec.desc.total_flops(), 0.0);
  }
}

TEST_P(EveryKernel, PresetsAreFeasible) {
  const auto spec = make(GetParam());
  for (const auto* params : {&spec.tuned, &spec.naive}) {
    const auto r = swacc::validate_launch(spec.desc, *params, kArch);
    EXPECT_TRUE(r.ok) << GetParam() << ": " << r.message;
  }
}

TEST_P(EveryKernel, SmallScaleSimulatesEndToEnd) {
  const auto spec = make(GetParam(), Scale::kSmall);
  const auto lk = swacc::lower(spec.desc, spec.tuned, kArch);
  const auto r = sim::simulate(lk.sim_config, lk.binary, lk.programs);
  EXPECT_GT(r.total_ticks, 0u);
  EXPECT_EQ(r.cpes.size(), lk.summary.active_cpes);
  // Every CPE finished and the breakdown is self-consistent.
  for (const auto& c : r.cpes) {
    EXPECT_GT(c.finish, 0u);
    EXPECT_LE(c.comp, c.finish);
  }
}

TEST_P(EveryKernel, SmallIsSmallerThanFull) {
  const auto small = make(GetParam(), Scale::kSmall);
  const auto full = make(GetParam(), Scale::kFull);
  EXPECT_LE(small.desc.n_outer * small.desc.inner_iters,
            full.desc.n_outer * full.desc.inner_iters);
}

TEST_P(EveryKernel, IrregularityMatchesGloadProfile) {
  const auto spec = make(GetParam());
  if (spec.irregular) {
    EXPECT_TRUE(spec.desc.has_indirect() ||
                spec.desc.comp_imbalance > 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryKernel, ::testing::ValuesIn(suite_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(WrfFactories, DynamicsSegmentsShrinkWithCpes) {
  const auto few = wrf_dynamics(16);
  const auto many = wrf_dynamics(64);
  // The DMA segment (one z-row of the x-slice) shrinks with more CPEs:
  // the transaction-waste mechanism of Fig. 9.
  const auto seg_bytes = [](const KernelSpec& s) {
    return s.desc.arrays[0].bytes_per_outer /
           s.desc.arrays[0].segments_per_outer;
  };
  // (Not exactly 4x: low CPE counts split their wide slices into SPM-sized
  // sub-slices, which shortens their segments again.)
  EXPECT_GE(seg_bytes(few), 2 * seg_bytes(many));

  const auto lk_few = swacc::lower(few.desc, few.tuned, kArch);
  const auto lk_many = swacc::lower(many.desc, many.tuned, kArch);
  EXPECT_GT(lk_few.summary.dma_efficiency(),
            lk_many.summary.dma_efficiency());
}

TEST(WrfFactories, PhysicsIsComputeBound) {
  const auto spec = wrf_physics(64, Scale::kSmall);
  const auto lk = swacc::lower(spec.desc, spec.tuned, kArch);
  const auto r = sim::simulate(lk.sim_config, lk.binary, lk.programs);
  EXPECT_GT(r.avg_comp_cycles(), 3.0 * r.avg_dma_wait_cycles());
}

TEST(WrfFactories, RejectsBadConfig) {
  WrfDynamicsConfig cfg;
  cfg.z_chunk = 3;  // does not divide nz=64
  EXPECT_THROW(wrf_dynamics_cfg(64, cfg), sw::Error);
  EXPECT_THROW(wrf_dynamics_cfg(0, WrfDynamicsConfig{}), sw::Error);
}

}  // namespace
}  // namespace swperf::kernels
