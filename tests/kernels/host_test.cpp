// Functional tests of the host reference implementations: the suite's
// kernels are real algorithms, not just performance descriptions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "kernels/backprop.h"
#include "kernels/bfs.h"
#include "kernels/btree.h"
#include "kernels/gaussian.h"
#include "kernels/hotspot.h"
#include "kernels/kmeans.h"
#include "kernels/lud.h"
#include "kernels/nbody.h"
#include "kernels/nw.h"
#include "kernels/pathfinder.h"
#include "kernels/srad.h"
#include "kernels/streamcluster.h"
#include "kernels/vecadd.h"
#include "sw/error.h"
#include "sw/rng.h"

namespace swperf::kernels::host {
namespace {

TEST(HostVecadd, AddsElementwise) {
  const std::vector<double> a{1, 2, 3}, b{10, 20, 30};
  std::vector<double> c(3);
  vecadd(a, b, c);
  EXPECT_EQ(c, (std::vector<double>{11, 22, 33}));
  std::vector<double> wrong(2);
  EXPECT_THROW(vecadd(a, b, wrong), sw::Error);
}

TEST(HostKmeans, RecoversSeparatedClusters) {
  // Three well-separated blobs in 4 dimensions.
  sw::Rng rng(1);
  constexpr std::uint32_t kDim = 4;
  constexpr std::size_t kPer = 100;
  std::vector<double> pts;
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < kPer; ++i) {
      for (std::uint32_t f = 0; f < kDim; ++f) {
        pts.push_back(10.0 * c + rng.uniform(-0.5, 0.5));
      }
    }
  }
  std::vector<std::uint32_t> assign(3 * kPer);
  const auto centroids = kmeans(pts, kDim, 3, 10, assign);
  ASSERT_EQ(centroids.size(), 3u * kDim);
  // Every blob is internally consistent and distinct from the others.
  for (std::size_t i = 1; i < kPer; ++i) {
    EXPECT_EQ(assign[i], assign[0]);
    EXPECT_EQ(assign[kPer + i], assign[kPer]);
    EXPECT_EQ(assign[2 * kPer + i], assign[2 * kPer]);
  }
  EXPECT_NE(assign[0], assign[kPer]);
  EXPECT_NE(assign[kPer], assign[2 * kPer]);
  // Centroids sit near the blob centres.
  for (int c = 0; c < 3; ++c) {
    const auto id = assign[static_cast<std::size_t>(c) * kPer];
    for (std::uint32_t f = 0; f < kDim; ++f) {
      EXPECT_NEAR(centroids[id * kDim + f], 10.0 * c, 0.2);
    }
  }
}

TEST(HostKmeans, StepReducesOrKeepsCost) {
  sw::Rng rng(2);
  constexpr std::uint32_t kDim = 8;
  std::vector<double> pts(64 * kDim);
  for (auto& p : pts) p = rng.uniform(0, 1);
  std::vector<double> cents(pts.begin(), pts.begin() + 4 * kDim);
  std::vector<std::uint32_t> assign(64);
  double prev = std::numeric_limits<double>::infinity();
  for (int it = 0; it < 5; ++it) {
    cents = kmeans_step(pts, cents, kDim, assign);
    const double cost = assignment_cost(pts, cents, kDim);
    EXPECT_LE(cost, prev * (1.0 + 1e-9));
    prev = cost;
  }
}

TEST(HostLud, FactorisationReconstructsMatrix) {
  sw::Rng rng(3);
  constexpr std::uint32_t n = 24;
  std::vector<double> a(n * n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      a[i * n + j] = rng.uniform(0, 1) + (i == j ? n : 0.0);  // diag dominant
    }
  }
  const auto original = a;
  lud(a, n);
  EXPECT_LT(lud_residual(a, original, n), 1e-9);
}

TEST(HostLud, RejectsSingularPivot) {
  std::vector<double> a{0.0, 1.0, 1.0, 0.0};  // zero leading pivot
  EXPECT_THROW(lud(a, 2), sw::Error);
}

TEST(HostHotspot, UniformGridWithoutPowerIsSteady) {
  const std::vector<double> temp(16 * 16, 300.0);
  const std::vector<double> power(16 * 16, 0.0);
  const auto out = hotspot_step(temp, power, 16, 16);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 300.0);
}

TEST(HostHotspot, HeatSourceWarmsNeighbours) {
  std::vector<double> temp(9 * 9, 300.0);
  std::vector<double> power(9 * 9, 0.0);
  power[4 * 9 + 4] = 10.0;
  auto out = hotspot_step(temp, power, 9, 9);
  EXPECT_GT(out[4 * 9 + 4], 300.0);
  out = hotspot_step(out, power, 9, 9);
  EXPECT_GT(out[4 * 9 + 3], 300.0);  // diffused west
  EXPECT_GT(out[3 * 9 + 4], 300.0);  // diffused north
}

TEST(HostNbody, EnergyApproximatelyConserved) {
  sw::Rng rng(4);
  constexpr std::size_t n = 24;
  std::vector<double> pos(3 * n), vel(3 * n, 0.0);
  for (auto& p : pos) p = rng.uniform(-1, 1);
  const double e0 = nbody_energy(pos, vel);
  for (int s = 0; s < 20; ++s) nbody_step(pos, vel, 1e-4);
  const double e1 = nbody_energy(pos, vel);
  EXPECT_NEAR(e1, e0, std::abs(e0) * 0.02);
}

TEST(HostNbody, TwoBodiesAttract) {
  std::vector<double> pos{-1, 0, 0, 1, 0, 0};
  std::vector<double> vel(6, 0.0);
  nbody_step(pos, vel, 1e-2);
  EXPECT_GT(pos[0], -1.0);  // moved toward each other
  EXPECT_LT(pos[3], 1.0);
  EXPECT_GT(vel[0], 0.0);
  EXPECT_LT(vel[3], 0.0);
}

TEST(HostBfs, KnownGraphDistances) {
  // 0 -> 1 -> 2 -> 3 with a shortcut 0 -> 2.
  Graph g;
  g.row_offsets = {0, 2, 3, 4, 4};
  g.columns = {1, 2, 2, 3};
  const auto d = bfs(g, 0);
  EXPECT_EQ(d, (std::vector<std::uint32_t>{0, 1, 1, 2}));
}

TEST(HostBfs, RandomGraphFullyReachableFromZero) {
  sw::Rng rng(5);
  const auto g = random_graph(500, 4.0, rng);
  EXPECT_EQ(g.nodes(), 500u);
  const auto d = bfs(g, 0);
  for (std::uint32_t i = 0; i < 500; ++i) {
    // The i -> i+1 backbone guarantees reachability with distance <= i.
    ASSERT_NE(d[i], std::numeric_limits<std::uint32_t>::max());
    EXPECT_LE(d[i], i);
  }
}

TEST(HostBfs, DistancesAreBfsConsistent) {
  sw::Rng rng(6);
  const auto g = random_graph(200, 3.0, rng);
  const auto d = bfs(g, 0);
  // Every edge (u,v) satisfies d[v] <= d[u] + 1 (triangle property).
  for (std::uint32_t u = 0; u < g.nodes(); ++u) {
    if (d[u] == std::numeric_limits<std::uint32_t>::max()) continue;
    for (std::uint32_t e = g.row_offsets[u]; e < g.row_offsets[u + 1]; ++e) {
      EXPECT_LE(d[g.columns[e]], d[u] + 1);
    }
  }
}

TEST(HostBtree, LowerBoundSearch) {
  const std::vector<std::uint64_t> keys{2, 4, 4, 8, 16};
  EXPECT_EQ(lower_bound_search(keys, 1), 0u);
  EXPECT_EQ(lower_bound_search(keys, 4), 1u);
  EXPECT_EQ(lower_bound_search(keys, 5), 3u);
  EXPECT_EQ(lower_bound_search(keys, 100), 5u);
}

TEST(HostPathfinder, MatchesBruteForceOnSmallGrid) {
  const std::uint32_t rows = 4, cols = 5;
  sw::Rng rng(7);
  std::vector<int> wall(rows * cols);
  for (auto& w : wall) w = static_cast<int>(rng.next_below(10));

  const auto dp = pathfinder(wall, rows, cols);

  // Brute force over all monotone paths.
  std::vector<int> best(cols, std::numeric_limits<int>::max());
  struct Walk {
    std::uint32_t col;
    int cost;
  };
  std::vector<Walk> frontier;
  for (std::uint32_t c = 0; c < cols; ++c) {
    frontier.push_back({c, wall[c]});
  }
  for (std::uint32_t r = 1; r < rows; ++r) {
    std::vector<Walk> next;
    for (const auto& w : frontier) {
      for (int dc = -1; dc <= 1; ++dc) {
        const auto nc = static_cast<std::int64_t>(w.col) + dc;
        if (nc < 0 || nc >= cols) continue;
        next.push_back({static_cast<std::uint32_t>(nc),
                        w.cost + wall[r * cols + nc]});
      }
    }
    frontier = std::move(next);
  }
  for (const auto& w : frontier) {
    best[w.col] = std::min(best[w.col], w.cost);
  }
  for (std::uint32_t c = 0; c < cols; ++c) {
    EXPECT_EQ(dp[c], best[c]) << "col " << c;
  }
}

TEST(HostBackprop, ForwardPassIsSigmoidOfWeightedSum) {
  const std::vector<double> input{1.0, 2.0};
  const std::vector<double> weights{0.5, -0.5, 0.25, 0.5};  // 2x2
  const auto h = backprop_forward(input, weights, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_NEAR(h[0], 1.0 / (1.0 + std::exp(-(1.0 * 0.5 + 2.0 * 0.25))),
              1e-12);
  EXPECT_NEAR(h[1], 1.0 / (1.0 + std::exp(-(1.0 * -0.5 + 2.0 * 0.5))),
              1e-12);
  for (double v : h) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(HostSrad, UniformImageGivesUnitCoefficients) {
  const std::vector<double> img(32 * 32, 2.0);
  const auto c = srad_coefficients(img, 32, 32);
  // No gradients anywhere: q == 0 and the coefficient is maximal/finite.
  for (double v : c) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);
  }
}

TEST(HostSrad, EdgesReduceDiffusion) {
  std::vector<double> img(16 * 16, 1.0);
  for (std::uint32_t r = 0; r < 16; ++r) {
    for (std::uint32_t c = 8; c < 16; ++c) img[r * 16 + c] = 5.0;  // edge
  }
  const auto coef = srad_coefficients(img, 16, 16);
  // The diffusion coefficient at the edge is below the flat-region value.
  EXPECT_LT(coef[8 * 16 + 8], coef[8 * 16 + 2]);
}

TEST(HostNw, KnownAlignmentScores) {
  // Identical sequences: perfect score along the diagonal.
  const std::string a = "ACGTACGT";
  const auto same = nw_last_row(std::span<const char>(a.data(), a.size()),
                                std::span<const char>(a.data(), a.size()));
  EXPECT_EQ(same.back(), 8);  // 8 matches at +1
  // Completely different: all mismatches (-1 each) is the best alignment.
  const std::string b = "TTTTTTTT";
  const std::string c = "AAAAAAAA";
  const auto diff = nw_last_row(std::span<const char>(b.data(), b.size()),
                                std::span<const char>(c.data(), c.size()));
  EXPECT_EQ(diff.back(), -8);
}

TEST(HostNw, GapBeatsLongMismatchRun) {
  const std::string a = "AAAA";
  const std::string b = "AA";
  const auto row = nw_last_row(std::span<const char>(a.data(), a.size()),
                               std::span<const char>(b.data(), b.size()));
  EXPECT_EQ(row.back(), 0);  // 2 matches, 2 gaps
}

TEST(HostGaussian, SolvesLinearSystem) {
  // 3x3 system with known solution x = (1, -2, 3).
  const std::vector<double> a{2, 1, -1, -3, -1, 2, -2, 1, 2};
  const std::vector<double> x_true{1, -2, 3};
  std::vector<double> b(3, 0.0);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) b[i] += a[i * 3 + j] * x_true[j];
  }
  const auto x = gaussian_solve(a, b, 3);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(HostGaussian, RandomSystemResidualIsTiny) {
  sw::Rng rng(11);
  constexpr std::uint32_t n = 32;
  std::vector<double> a(n * n), b(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(-1, 1);
    for (std::uint32_t j = 0; j < n; ++j) {
      a[i * n + j] = rng.uniform(-1, 1) + (i == j ? n : 0.0);
    }
  }
  const auto x = gaussian_solve(a, b, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    double s = 0;
    for (std::uint32_t j = 0; j < n; ++j) s += a[i * n + j] * x[j];
    EXPECT_NEAR(s, b[i], 1e-8);
  }
}

TEST(HostStreamcluster, CostIsNearestCenterSum) {
  const std::vector<double> pts{0, 0, 10, 10};  // two 2-d points
  const std::vector<double> centers{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(assignment_cost(pts, centers, 2), 0.0);
  const std::vector<double> one{0, 0};
  EXPECT_DOUBLE_EQ(assignment_cost(pts, one, 2), 200.0);
}

}  // namespace
}  // namespace swperf::kernels::host
