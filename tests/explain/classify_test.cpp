// The deterministic bottleneck classifier: every label is reachable
// through its rule, the rule chain is total (exactly one label per
// input), and — on the real suite — the cheap trace-free query
// (Session::bottleneck) agrees with the full traced explanation
// (Session::explain) by construction.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "explain/classify.h"
#include "explain/explain.h"
#include "kernels/suite.h"
#include "pipeline/session.h"

namespace swperf::explain {
namespace {

/// A busy, healthy launch that trips no rule — the base the per-label
/// cases perturb one signal at a time.
Signals balanced_signals() {
  Signals s;
  s.span_cycles = 10000.0;
  s.occupancy = 1.0;
  s.mem_busy_frac = 0.40;
  s.comp_frac = 0.50;
  s.dma_stall_frac = 0.10;
  s.gload_stall_frac = 0.0;
  s.barrier_frac = 0.05;
  s.roofline_memory_bound = false;
  s.ng_dma = 0.5;
  s.issue_gap_frac = 0.1;
  return s;
}

TEST(Classify, EveryLabelReachable) {
  EXPECT_EQ(classify(balanced_signals()).label, Label::kBalanced);

  Signals s = balanced_signals();
  s.mem_busy_frac = 0.80;
  EXPECT_EQ(classify(s).label, Label::kMemoryBandwidthBound);

  s = balanced_signals();
  s.gload_stall_frac = 0.35;
  EXPECT_EQ(classify(s).label, Label::kGloadLatencyBound);

  s = balanced_signals();
  s.dma_stall_frac = 0.35;
  s.ng_dma = 0.5;
  s.issue_gap_frac = 0.1;
  EXPECT_EQ(classify(s).label, Label::kDmaLatencyBound);

  s = balanced_signals();
  s.dma_stall_frac = 0.35;
  s.ng_dma = 2.0;  // enough in-flight requests: bandwidth, not latency
  EXPECT_EQ(classify(s).label, Label::kMemoryBandwidthBound);

  s = balanced_signals();
  s.dma_stall_frac = 0.35;
  s.ng_dma = 0.5;
  s.issue_gap_frac = 0.6;  // the (MRT−1)·Δ tail dominates
  EXPECT_EQ(classify(s).label, Label::kIssueBound);

  s = balanced_signals();
  s.occupancy = 0.25;
  EXPECT_EQ(classify(s).label, Label::kUnderOccupied);

  s = balanced_signals();
  s.comp_frac = 0.90;
  EXPECT_EQ(classify(s).label, Label::kComputeBound);

  s = balanced_signals();
  s.comp_frac = 0.30;
  s.barrier_frac = 0.40;
  EXPECT_EQ(classify(s).label, Label::kBarrierBound);

  s = Signals{};  // nothing executed
  EXPECT_EQ(classify(s).label, Label::kBalanced);
}

TEST(Classify, RuleOrderIsFirstMatchWins) {
  // Saturated controllers outrank a simultaneous gload stall...
  Signals s = balanced_signals();
  s.mem_busy_frac = 0.90;
  s.gload_stall_frac = 0.50;
  EXPECT_EQ(classify(s).label, Label::kMemoryBandwidthBound);

  // ...and gload stalls outrank dma stalls only when at least as large.
  s = balanced_signals();
  s.gload_stall_frac = 0.32;
  s.dma_stall_frac = 0.45;
  s.ng_dma = 0.5;
  EXPECT_EQ(classify(s).label, Label::kDmaLatencyBound);
}

TEST(Classify, EqualSignalsGetEqualLabelsAndEvidence) {
  const Signals s = balanced_signals();
  const Classification a = classify(s);
  const Classification b = classify(s);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.evidence, b.evidence);
  EXPECT_FALSE(a.evidence.empty());
}

TEST(Classify, LabelNamesAreStableKebabCase) {
  const std::set<std::string> names = {
      "memory-bandwidth-bound", "dma-latency-bound",   "issue-bound",
      "gload-latency-bound",    "under-occupied",      "compute-bound",
      "barrier-bound",          "balanced"};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(names.count(label_name(static_cast<Label>(i))), 1u) << i;
  }
}

// Every suite kernel (tuned, small) gets exactly one label,
// deterministically, and the full traced explanation carries the same
// label as the cheap trace-free query.
TEST(Classify, SuiteKernelsGetExactlyOneStableLabel) {
  pipeline::Session session;
  for (const auto& name : kernels::suite_names()) {
    const auto spec = kernels::make(name, kernels::Scale::kSmall);

    const Classification first = session.bottleneck(spec.desc, spec.tuned);
    const Classification again = session.bottleneck(spec.desc, spec.tuned);
    EXPECT_EQ(first.label, again.label) << name;
    EXPECT_EQ(first.evidence, again.evidence) << name;
    EXPECT_FALSE(first.evidence.empty()) << name;
    EXPECT_STRNE(label_name(first.label), "?") << name;

    const Explanation e = session.explain(spec.desc, spec.tuned);
    EXPECT_EQ(e.label, first.label)
        << name << ": explain() and bottleneck() must agree by construction";
    EXPECT_EQ(e.evidence, first.evidence) << name;
  }
}

}  // namespace
}  // namespace swperf::explain
