// Golden explanations: the full `swperf explain <kernel> --small --json`
// artifact for every Table II kernel (tuned launch), pinned byte-for-byte
// against a checked-in fixture.  This freezes the explanation schema
// (field order, number formatting), the critical-path numbers, and the
// bottleneck label + evidence sentence per kernel — a drift in any of
// the three shows up as a fixture diff, not a silent behaviour change.
//
// Refreshing after an intentional change:
//   SWPERF_REGEN_GOLDEN=1 ctest -R ExplainGolden
// then review the fixture diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "explain/explain.h"
#include "kernels/suite.h"
#include "pipeline/session.h"
#include "serde/json.h"

namespace {

using namespace swperf;

std::string fixture_path(const std::string& kernel) {
  return std::string(SWPERF_EXPLAIN_GOLDEN_DIR) + "/" + kernel + ".json";
}

/// Exactly what `swperf explain <kernel> --small --json` prints (the
/// explanation has no host-dependent fields, so --deterministic-json is
/// the same bytes).
std::string current_explanation(const std::string& kernel) {
  pipeline::Session session;
  const auto spec = kernels::make(kernel, kernels::Scale::kSmall);
  const auto e = session.explain(spec.desc, spec.tuned);
  return explain::to_json(e).dump() + "\n";
}

class ExplainGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(ExplainGolden, ArtifactPinned) {
  const std::string kernel = GetParam();
  const std::string artifact = current_explanation(kernel);

  // Byte-stability within a process first: two explanations of the same
  // launch render identically (the trace is re-recorded each time).
  EXPECT_EQ(artifact, current_explanation(kernel));

  if (const char* regen = std::getenv("SWPERF_REGEN_GOLDEN");
      regen != nullptr && std::string(regen) == "1") {
    std::ofstream out(fixture_path(kernel), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << fixture_path(kernel);
    out << artifact;
    GTEST_SKIP() << "regenerated " << fixture_path(kernel);
  }

  std::ifstream in(fixture_path(kernel), std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << fixture_path(kernel)
                  << " (regenerate with SWPERF_REGEN_GOLDEN=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(artifact, buf.str())
      << "explanation for " << kernel << " drifted from the fixture";
}

TEST_P(ExplainGolden, FixtureIsSerdeCanonicalAndWellFormed) {
  std::ifstream in(fixture_path(GetParam()), std::ios::binary);
  if (!in) GTEST_SKIP() << "fixture not present";
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto r = serde::Json::parse(line);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.dump(), line);

  // Schema spot checks of the docs/EXPLAIN.md contract.
  for (const char* field :
       {"kernel", "params", "time_cycles", "operational_intensity",
        "roofline_position", "critical_path", "slack", "signals",
        "bottleneck", "evidence"}) {
    EXPECT_TRUE(r.value.contains(field)) << field;
  }
  const auto& cp = r.value.at("critical_path");
  for (const char* field :
       {"span_cycles", "trace_events", "path_events", "breakdown_cycles"}) {
    EXPECT_TRUE(cp.contains(field)) << field;
  }
  // The breakdown telescopes: its six classes sum to the span.
  const auto& b = cp.at("breakdown_cycles");
  double sum = 0.0;
  for (const auto& [key, v] : b.members()) sum += v.as_double();
  EXPECT_DOUBLE_EQ(sum, cp.at("span_cycles").as_double());
  // Exactly one label, from the stable set.
  EXPECT_FALSE(r.value.at("bottleneck").as_string().empty());
  EXPECT_FALSE(r.value.at("evidence").as_string().empty());
  ASSERT_TRUE(r.value.at("slack").is_array());
  EXPECT_GE(r.value.at("slack").size(), 3u);  // cpe_compute, mem0, barrier
}

INSTANTIATE_TEST_SUITE_P(TableII, ExplainGolden,
                         ::testing::ValuesIn(kernels::table2_kernels()),
                         [](const auto& pinfo) { return pinfo.param; });

}  // namespace
