// The execution DAG and critical-path walk, on hand-built traces whose
// critical path is known in closed form, then on real simulated traces
// where only the invariants (exact span attribution, time-ordered path,
// lane accounting) can be pinned.
#include <gtest/gtest.h>

#include <cstdint>

#include "explain/dag.h"
#include "kernels/suite.h"
#include "pipeline/session.h"
#include "sim/trace.h"

namespace swperf::explain {
namespace {

using sim::Activity;
using sim::TraceEvent;

TraceEvent ev(std::uint32_t lane, Activity what, sw::Tick begin, sw::Tick end,
              std::uint64_t req = sim::kNoReq,
              std::uint64_t pred = sim::kNoPred) {
  TraceEvent e;
  e.lane = lane;
  e.what = what;
  e.begin = begin;
  e.end = end;
  e.req = req;
  e.pred = pred;
  return e;
}

TEST(ExecutionDag, EmptyTraceHasEmptyPath) {
  sim::Trace t;
  t.n_cpes = 4;
  t.n_controllers = 1;
  const ExecutionDag dag(t);
  EXPECT_EQ(dag.span(), 0u);
  EXPECT_TRUE(dag.critical_path().empty());
  EXPECT_EQ(dag.breakdown().total(), 0u);
  ASSERT_EQ(dag.lane_slack().size(), 5u);
  for (const auto& l : dag.lane_slack()) EXPECT_EQ(l.slack, 0u);
}

// One CPE, one controller: compute, a DMA round-trip through the
// controller, compute again.  Every hop's attribution is known exactly.
//
//   lane 0: [0  compute  100][issue][--- dma wait ---300][compute 400]
//   lane 1:                     [150  mem service  250]
TEST(ExecutionDag, DmaRoundTripAttributesExactly) {
  sim::Trace t;
  t.n_cpes = 1;
  t.n_controllers = 1;
  t.events.push_back(ev(0, Activity::kCompute, 0, 100));
  t.events.push_back(ev(0, Activity::kDmaIssue, 100, 100, 0));
  t.events.push_back(ev(1, Activity::kMemService, 150, 250, 0, 1));
  t.events.push_back(ev(0, Activity::kDmaWait, 100, 300, 0, 2));
  t.events.push_back(ev(0, Activity::kCompute, 300, 400));

  const ExecutionDag dag(t);
  EXPECT_EQ(dag.span(), 400u);

  // The walk visits every event in the chain, in time order.
  ASSERT_EQ(dag.critical_path().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(dag.critical_path()[i].event, i);
  }

  // compute 100 + issue 0 + (idle 50: issue→service start) + service 100
  // + wait tail 50 + compute 100 == span 400.
  const CriticalBreakdown& b = dag.breakdown();
  EXPECT_EQ(b.compute, 200u);
  EXPECT_EQ(b.mem_service, 100u);
  EXPECT_EQ(b.dma_wait, 50u);
  EXPECT_EQ(b.idle, 50u);
  EXPECT_EQ(b.gload_wait, 0u);
  EXPECT_EQ(b.barrier, 0u);
  EXPECT_EQ(b.total(), dag.span());

  // Lane accounting: the controller carries exactly its service slice.
  EXPECT_EQ(dag.lane_slack()[1].critical, 100u);
  EXPECT_EQ(dag.lane_slack()[1].slack, 300u);
  // 100 + 50 + 100 on lane 0; the 50 idle ticks belong to no lane.
  EXPECT_EQ(dag.lane_slack()[0].critical, 250u);
}

// Three CPEs meet at a barrier; the straggler (lane 2) arrives exactly at
// the release, so its zero-duration wait is never recorded.  The walk
// must still cross lanes through the latest *recorded* arrival's chain.
//
//   lane 0: [0 compute 100][100   barrier   200][200 compute 260]
//   lane 1: [0   compute    180][180 bar 200]
//   lane 2: [0     compute      200]
TEST(ExecutionDag, BarrierJoinCrossesToLatestRecordedArrival) {
  sim::Trace t;
  t.n_cpes = 3;
  t.n_controllers = 1;
  t.events.push_back(ev(0, Activity::kCompute, 0, 100));
  t.events.push_back(ev(1, Activity::kCompute, 0, 180));
  t.events.push_back(ev(2, Activity::kCompute, 0, 200));
  t.events.push_back(ev(0, Activity::kBarrier, 100, 200, 7));
  t.events.push_back(ev(1, Activity::kBarrier, 180, 200, 7));
  t.events.push_back(ev(0, Activity::kCompute, 200, 260));

  const ExecutionDag dag(t);
  EXPECT_EQ(dag.span(), 260u);

  // Finish is lane 0's trailing compute; its barrier hands off to lane
  // 1's chain (the latest recorded arrival), not lane 0's own history.
  ASSERT_EQ(dag.critical_path().size(), 3u);
  EXPECT_EQ(dag.critical_path()[0].event, 1u);  // lane 1 compute
  EXPECT_EQ(dag.critical_path()[1].event, 3u);  // lane 0 barrier
  EXPECT_EQ(dag.critical_path()[2].event, 5u);  // lane 0 compute

  const CriticalBreakdown& b = dag.breakdown();
  EXPECT_EQ(b.compute, 240u);  // 180 on lane 1 + 60 on lane 0
  EXPECT_EQ(b.barrier, 20u);   // 180 → 200 release gap
  EXPECT_EQ(b.idle, 0u);
  EXPECT_EQ(b.total(), dag.span());

  EXPECT_EQ(dag.lane_slack()[0].critical, 80u);
  EXPECT_EQ(dag.lane_slack()[1].critical, 180u);
  EXPECT_EQ(dag.lane_slack()[2].critical, 0u);
}

// Ties between equally late predecessors break toward the smallest event
// id, so the path is deterministic.
TEST(ExecutionDag, TiesBreakTowardSmallestEventId) {
  sim::Trace t;
  t.n_cpes = 2;
  t.n_controllers = 1;
  t.events.push_back(ev(0, Activity::kCompute, 0, 100));
  t.events.push_back(ev(1, Activity::kCompute, 0, 100));
  t.events.push_back(ev(0, Activity::kBarrier, 100, 150, 0));
  t.events.push_back(ev(1, Activity::kBarrier, 100, 150, 0));

  const ExecutionDag dag(t);
  // Finish: both barriers end at 150; smallest id (2) wins.  Its best
  // predecessor: own lane pred (0, end 100) vs mate's lane pred (1, end
  // 100) — tie, smallest id (0) wins.
  ASSERT_EQ(dag.critical_path().size(), 2u);
  EXPECT_EQ(dag.critical_path()[0].event, 0u);
  EXPECT_EQ(dag.critical_path()[1].event, 2u);
  EXPECT_EQ(dag.breakdown().total(), dag.span());
}

// Real traces: the invariants hold on every simulated kernel — the
// attribution telescopes exactly to the span, the path is in time order,
// and per-lane critical time never exceeds the span.
TEST(ExecutionDag, SimulatedTracesAttributeExactly) {
  pipeline::Session session;
  for (const char* name : {"kmeans", "cfd", "leukocyte", "srad"}) {
    const auto spec = kernels::make(name, kernels::Scale::kSmall);
    const auto r = session.simulate_traced(spec.desc, spec.tuned);
    ASSERT_FALSE(r.trace.empty()) << name;

    const ExecutionDag dag(r.trace);
    EXPECT_EQ(dag.span(), r.trace.span()) << name;
    EXPECT_EQ(dag.breakdown().total(), dag.span()) << name;
    ASSERT_FALSE(dag.critical_path().empty()) << name;

    sw::Tick last_end = 0;
    for (const auto& step : dag.critical_path()) {
      ASSERT_LT(step.event, r.trace.events.size()) << name;
      const auto& e = r.trace.events[step.event];
      EXPECT_GE(e.end, last_end) << name << ": path not in time order";
      last_end = e.end;
    }
    // The last hop is the finish event.
    EXPECT_EQ(r.trace.events[dag.critical_path().back().event].end,
              dag.span())
        << name;
    for (const auto& l : dag.lane_slack()) {
      EXPECT_LE(l.critical, dag.span()) << name << " lane " << l.lane;
      EXPECT_EQ(l.slack, dag.span() - l.critical) << name;
    }
  }
}

}  // namespace
}  // namespace swperf::explain
