// Round-trip contract of the request-side schemas: for every suite kernel,
// to_json(from_json(to_json(x))) is byte-identical to to_json(x), and a
// round-tripped description drives the pipeline to the identical static
// summary.  Malformed documents are rejected with sw::Error, never crashes.
#include <gtest/gtest.h>

#include <string>

#include "kernels/suite.h"
#include "serde/serde.h"
#include "sw/arch.h"
#include "sw/error.h"
#include "swacc/lower.h"

namespace swperf::serde {
namespace {

TEST(SerdeRoundTrip, LaunchParamsByteIdentical) {
  swacc::LaunchParams defaults;
  swacc::LaunchParams full;
  full.tile = 1024;
  full.unroll = 8;
  full.requested_cpes = 48;
  full.double_buffer = true;
  full.vector_width = 4;
  full.coalesce_gloads = true;
  for (const auto& p : {defaults, full}) {
    const std::string once = to_json(p).dump();
    const auto back = launch_params_from_json(Json::parse_or_throw(once));
    EXPECT_EQ(to_json(back).dump(), once);
  }
}

TEST(SerdeRoundTrip, EverySuiteKernelDescByteIdentical) {
  for (const auto& name : kernels::suite_names()) {
    const auto spec = kernels::make(name, kernels::Scale::kSmall);
    const std::string once = to_json(spec.desc).dump();
    const auto back = kernel_desc_from_json(Json::parse_or_throw(once));
    EXPECT_EQ(to_json(back).dump(), once) << name;
    // The tuned preset rides along in eval requests; it must survive too.
    const std::string params_once = to_json(spec.tuned).dump();
    EXPECT_EQ(
        to_json(launch_params_from_json(Json::parse_or_throw(params_once)))
            .dump(),
        params_once)
        << name;
  }
}

TEST(SerdeRoundTrip, RoundTrippedDescLowersToIdenticalSummary) {
  // Semantic (not just textual) equivalence: the deserialized kernel is
  // the same program as far as the whole pipeline can observe.
  const auto arch = sw::ArchParams::sw26010();
  for (const auto& name : kernels::suite_names()) {
    const auto spec = kernels::make(name, kernels::Scale::kSmall);
    const auto back =
        kernel_desc_from_json(Json::parse_or_throw(to_json(spec.desc).dump()));
    const auto s0 = swacc::lower(spec.desc, spec.tuned, arch).summary;
    const auto s1 = swacc::lower(back, spec.tuned, arch).summary;
    EXPECT_EQ(to_json(s1).dump(), to_json(s0).dump()) << name;
  }
}

TEST(SerdeRoundTrip, BasicBlockByteIdentical) {
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);
  const std::string once = to_json(spec.desc.body).dump();
  EXPECT_EQ(to_json(block_from_json(Json::parse_or_throw(once))).dump(),
            once);
}

// ---- Malformed input: sw::Error, not UB -----------------------------------

TEST(SerdeReject, UnknownFieldsAreTypoSafety) {
  EXPECT_THROW(launch_params_from_json(Json::parse_or_throw(
                   R"({"tile":8,"tiel":16})")),
               sw::Error);
  EXPECT_THROW(
      kernel_desc_from_json(Json::parse_or_throw(R"({"name":"k","bogus":1})")),
      sw::Error);
  EXPECT_THROW(array_ref_from_json(Json::parse_or_throw(
                   R"({"name":"A","direction":"in"})")),
               sw::Error);
  EXPECT_THROW(
      instr_from_json(Json::parse_or_throw(R"({"op":"fadd","opcode":1})")),
      sw::Error);
}

TEST(SerdeReject, TypeMismatches) {
  EXPECT_THROW(launch_params_from_json(Json::parse_or_throw(
                   R"({"tile":"many"})")),
               sw::Error);
  EXPECT_THROW(launch_params_from_json(Json::parse_or_throw(
                   R"({"double_buffer":1})")),
               sw::Error);
  EXPECT_THROW(launch_params_from_json(Json::parse_or_throw("[]")),
               sw::Error);
  EXPECT_THROW(kernel_desc_from_json(Json::parse_or_throw("42")), sw::Error);
}

TEST(SerdeReject, MissingRequiredName) {
  EXPECT_THROW(kernel_desc_from_json(Json::parse_or_throw(R"({"n_outer":4})")),
               sw::Error);
  EXPECT_THROW(array_ref_from_json(Json::parse_or_throw(R"({"dir":"in"})")),
               sw::Error);
}

TEST(SerdeReject, BadEnumNames) {
  EXPECT_THROW(array_ref_from_json(Json::parse_or_throw(
                   R"({"name":"A","dir":"sideways"})")),
               sw::Error);
  EXPECT_THROW(array_ref_from_json(Json::parse_or_throw(
                   R"({"name":"A","access":"random"})")),
               sw::Error);
  EXPECT_THROW(instr_from_json(Json::parse_or_throw(R"({"op":"frob"})")),
               sw::Error);
}

TEST(SerdeReject, StructurallyInvalidValues) {
  // Too many instruction sources.
  EXPECT_THROW(instr_from_json(Json::parse_or_throw(
                   R"({"op":"fadd","srcs":[1,2,3,4]})")),
               sw::Error);
  // uint32 overflow.
  EXPECT_THROW(launch_params_from_json(Json::parse_or_throw(
                   R"({"unroll":4294967296})")),
               sw::Error);
  // block_from_json runs BasicBlock::validate(): an instruction reading a
  // register outside num_regs is a validation error, not a crash later.
  EXPECT_THROW(block_from_json(Json::parse_or_throw(
                   R"({"name":"b","num_regs":1,)"
                   R"("instrs":[{"op":"fadd","dst":0,"srcs":[7,0,0]}]})")),
               sw::Error);
}

}  // namespace
}  // namespace swperf::serde
