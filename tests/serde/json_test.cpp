// The serde JSON core: writer escaping/number formatting, the reader, and
// the byte-level round-trip contract dump(parse(dump(x))) == dump(x).
#include "serde/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "sw/error.h"

namespace swperf::serde {
namespace {

std::string reparse_dump(const std::string& text) {
  const auto r = Json::parse(text);
  EXPECT_TRUE(r.ok) << r.error;
  return r.value.dump();
}

// ---- Writer ---------------------------------------------------------------

TEST(JsonWriter, ScalarsRenderCanonically) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(0).dump(), "0");
  EXPECT_EQ(Json(-42).dump(), "-42");
  EXPECT_EQ(Json(std::numeric_limits<std::uint64_t>::max()).dump(),
            "18446744073709551615");
  EXPECT_EQ(Json(std::numeric_limits<std::int64_t>::min()).dump(),
            "-9223372036854775808");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(JsonWriter, StringEscapes) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("a\\b").dump(), "\"a\\\\b\"");
  EXPECT_EQ(Json("\n\t\r\b\f").dump(), "\"\\n\\t\\r\\b\\f\"");
  EXPECT_EQ(Json(std::string("\x01\x1f", 2)).dump(), "\"\\u0001\\u001f\"");
  // Non-ASCII UTF-8 passes through untouched.
  EXPECT_EQ(Json("μs").dump(), "\"μs\"");
}

TEST(JsonWriter, DoubleFormattingIsShortestRoundTrip) {
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  EXPECT_EQ(Json(1.0 / 3.0).dump(), "0.3333333333333333");
  EXPECT_EQ(Json(0.1).dump(), "0.1");
  // A value that needs all 17 digits survives.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(Json(v).dump()), v);
  EXPECT_EQ(Json(0.0).dump(), "0");
  EXPECT_EQ(Json(-0.0).dump(), "-0.0");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  // Normalized at construction, not just at dump time.
  EXPECT_TRUE(Json(std::numeric_limits<double>::infinity()).is_null());
}

TEST(JsonWriter, ObjectsPreserveInsertionOrder) {
  Json j = Json::object();
  j.set("z", 1);
  j.set("a", 2);
  j.set("m", Json::array());
  EXPECT_EQ(j.dump(), "{\"z\":1,\"a\":2,\"m\":[]}");
}

TEST(JsonWriter, NestedCompound) {
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  Json inner = Json::object();
  inner.set("k", true);
  arr.push_back(std::move(inner));
  EXPECT_EQ(arr.dump(), "[1,\"two\",{\"k\":true}]");
}

// ---- Reader ---------------------------------------------------------------

TEST(JsonReader, ParsesScalars) {
  EXPECT_EQ(Json::parse_or_throw("null").type(), Json::Type::kNull);
  EXPECT_TRUE(Json::parse_or_throw("true").as_bool());
  EXPECT_EQ(Json::parse_or_throw("42").as_u64(), 42u);
  EXPECT_EQ(Json::parse_or_throw("-7").as_i64(), -7);
  EXPECT_DOUBLE_EQ(Json::parse_or_throw("2.5").as_double(), 2.5);
  EXPECT_EQ(Json::parse_or_throw("\"x\"").as_string(), "x");
}

TEST(JsonReader, NumberClassification) {
  // Integer tokens stay integers; any '.', 'e' or 'E' makes a double.
  EXPECT_EQ(Json::parse_or_throw("5").type(), Json::Type::kUint);
  EXPECT_EQ(Json::parse_or_throw("-5").type(), Json::Type::kInt);
  EXPECT_EQ(Json::parse_or_throw("5.0").type(), Json::Type::kDouble);
  EXPECT_EQ(Json::parse_or_throw("5e0").type(), Json::Type::kDouble);
  // Out-of-range integers fall back to double instead of failing.
  EXPECT_EQ(Json::parse_or_throw("99999999999999999999999").type(),
            Json::Type::kDouble);
}

TEST(JsonReader, StringEscapesAndUnicode) {
  EXPECT_EQ(Json::parse_or_throw("\"a\\\"b\\\\c\\n\"").as_string(),
            "a\"b\\c\n");
  EXPECT_EQ(Json::parse_or_throw("\"\\u0041\"").as_string(), "A");
  // Surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(Json::parse_or_throw("\"\\ud83d\\ude00\"").as_string(),
            "\xF0\x9F\x98\x80");
  // Lone surrogates are malformed.
  EXPECT_FALSE(Json::parse("\"\\ud83d\"").ok);
}

TEST(JsonReader, MalformedInputIsAnErrorNotACrash) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "nul", "01", "+1",
        "1.2.3", "\"unterminated", "[1] trailing", "{\"a\":1,}", "[1,,2]",
        "'single'", "\x01"}) {
    const auto r = Json::parse(bad);
    EXPECT_FALSE(r.ok) << "accepted: " << bad;
    EXPECT_NE(r.error.find("offset"), std::string::npos) << r.error;
  }
}

TEST(JsonReader, ParseOrThrowThrowsSwError) {
  EXPECT_THROW(Json::parse_or_throw("{nope"), sw::Error);
}

TEST(JsonReader, DepthLimitRejectsAdversarialNesting) {
  const std::string deep(4096, '[');
  EXPECT_FALSE(Json::parse(deep).ok);
}

TEST(JsonReader, WhitespaceTolerant) {
  const auto r = Json::parse(" \t\n{ \"a\" : [ 1 , 2 ] }\r\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.dump(), "{\"a\":[1,2]}");
}

// ---- Round trip -----------------------------------------------------------

TEST(JsonRoundTrip, DumpParseDumpIsIdentity) {
  for (const char* doc : {
           "null",
           "[-1,0,18446744073709551615,0.25,\"x\\ny\",true,null]",
           "{\"b\":1,\"a\":{\"nested\":[{},[]]},\"c\":-0.0}",
           "{\"unicode\":\"μs \\u0001\",\"neg\":-9223372036854775808}",
       }) {
    const std::string once = reparse_dump(doc);
    EXPECT_EQ(reparse_dump(once), once) << doc;
  }
}

// ---- Accessors ------------------------------------------------------------

TEST(JsonAccessors, TypeMismatchesThrow) {
  const Json j = Json::parse_or_throw("{\"s\":\"x\",\"n\":-1,\"d\":1.5}");
  EXPECT_THROW(j.at("s").as_u64(), sw::Error);
  EXPECT_THROW(j.at("n").as_u64(), sw::Error);  // negative
  EXPECT_THROW(j.at("d").as_u64(), sw::Error);  // fractional
  EXPECT_THROW(j.at("s").as_bool(), sw::Error);
  EXPECT_THROW(j.at("missing"), sw::Error);
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_TRUE(j.contains("s"));
}

TEST(JsonAccessors, SizeAndItems) {
  const Json j = Json::parse_or_throw("[1,2,3]");
  EXPECT_EQ(j.size(), 3u);
  EXPECT_EQ(j.items()[2].as_u64(), 3u);
  EXPECT_EQ(Json(5).size(), 0u);
}

}  // namespace
}  // namespace swperf::serde
