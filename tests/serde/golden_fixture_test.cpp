// Golden JSON fixtures: the serde rendering of every fig6-suite kernel's
// StaticSummary and model Prediction, pinned byte-for-byte against a
// checked-in file.  This guards two things at once — the pipeline's
// numbers (like tests/regression/golden_test.cpp) and the serialization
// format itself (field order, number formatting, escaping).
//
// Refreshing after an intentional model/schema change:
//   SWPERF_REGEN_GOLDEN=1 ctest -R SerdeGolden
// then review the fixture diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "kernels/suite.h"
#include "pipeline/session.h"
#include "serde/serde.h"

namespace {

using namespace swperf;

std::string fixture_path() {
  return std::string(SWPERF_SERDE_GOLDEN_DIR) + "/fig6_small.jsonl";
}

/// One line per fig6 kernel: {"kernel","summary","prediction"}.
std::vector<std::string> current_lines() {
  pipeline::Session session;
  std::vector<std::string> lines;
  for (const auto& spec : kernels::fig6_suite(kernels::Scale::kSmall)) {
    const auto& lowered = session.lower(spec.desc, spec.tuned);
    const auto pred = session.predict(spec.desc, spec.tuned);
    serde::Json j = serde::Json::object();
    j.set("kernel", spec.desc.name);
    j.set("summary", serde::to_json(lowered.summary));
    j.set("prediction", serde::to_json(pred));
    lines.push_back(j.dump());
  }
  return lines;
}

TEST(SerdeGolden, Fig6SummariesAndPredictionsPinned) {
  const auto lines = current_lines();
  ASSERT_FALSE(lines.empty());

  if (const char* regen = std::getenv("SWPERF_REGEN_GOLDEN");
      regen != nullptr && std::string(regen) == "1") {
    std::ofstream out(fixture_path(), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << fixture_path();
    for (const auto& line : lines) out << line << '\n';
    GTEST_SKIP() << "regenerated " << fixture_path();
  }

  std::ifstream in(fixture_path(), std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << fixture_path()
                  << " (regenerate with SWPERF_REGEN_GOLDEN=1)";
  std::vector<std::string> golden;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) golden.push_back(line);
  }
  ASSERT_EQ(golden.size(), lines.size())
      << "fig6 suite size changed; regenerate the fixture";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i], golden[i]) << "fixture line " << i + 1;
  }
}

TEST(SerdeGolden, FixtureLinesParseAndRoundTrip) {
  // The checked-in fixture is itself serde-canonical: parsing a line and
  // re-dumping it reproduces the line (the byte-stability contract).
  std::ifstream in(fixture_path(), std::ios::binary);
  if (!in) GTEST_SKIP() << "fixture not present";
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    const auto r = serde::Json::parse(line);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.dump(), line);
  }
}

}  // namespace
