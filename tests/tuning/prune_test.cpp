#include "tuning/prune.h"

#include <gtest/gtest.h>

#include "analysis/checker.h"
#include "kernels/suite.h"
#include "model/model.h"
#include "sim/machine.h"
#include "swacc/lower.h"
#include "sw/error.h"
#include "tuning/tuner.h"

namespace swperf::tuning {
namespace {

const sw::ArchParams kArch;

class BoundSoundness : public ::testing::TestWithParam<std::string> {};

TEST_P(BoundSoundness, NeverExceedsModelOrSimulation) {
  // The lower bound must understate both the precise model and the
  // simulator for every variant, or pruning could discard the optimum.
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  const model::PerfModel pm(kArch);
  for (const auto& v : space.enumerate(spec.desc, kArch)) {
    const double bound = variant_lower_bound_cycles(spec.desc, v, kArch);
    const auto lowered = swacc::lower(spec.desc, v, kArch);
    const double predicted = pm.predict(lowered.summary).t_total;
    const double simulated =
        sim::simulate(lowered.sim_config, lowered.binary, lowered.programs)
            .total_cycles();
    EXPECT_LE(bound, predicted * 1.001) << v.to_string();
    EXPECT_LE(bound, simulated * 1.001) << v.to_string();
    EXPECT_GT(bound, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperSet, BoundSoundness,
                         ::testing::ValuesIn(kernels::table2_kernels()));

TEST(Prune, KeepsTheEmpiricalOptimum) {
  for (const auto& name : kernels::table2_kernels()) {
    const auto spec = kernels::make(name, kernels::Scale::kSmall);
    const auto space = SearchSpace::standard(spec.desc, kArch);
    const auto all = space.enumerate(spec.desc, kArch);
    PruneStats stats;
    const auto kept = prune_variants(spec.desc, all, kArch, 1.3, &stats);
    EXPECT_EQ(stats.considered, all.size());
    EXPECT_EQ(stats.kept, kept.size());
    ASSERT_FALSE(kept.empty());

    // The empirically best variant of the full space must survive.
    const EmpiricalTuner tuner(kArch);
    const auto best_full = tuner.tune(spec.desc, space).best.to_string();
    bool survived = false;
    for (const auto& v : kept) {
      survived |= v.to_string() == best_full;
    }
    EXPECT_TRUE(survived) << name << ": pruned away " << best_full;
  }
}

TEST(Prune, ActuallyPrunesSomething) {
  // The kmeans space contains gload-fallback variants whose floor is far
  // above the optimum; those must go.
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);
  const auto all =
      SearchSpace::standard(spec.desc, kArch).enumerate(spec.desc, kArch);
  PruneStats stats;
  prune_variants(spec.desc, all, kArch, 1.3, &stats);
  EXPECT_GT(stats.pruned(), 0u);
}

TEST(Prune, SlackOneKeepsOnlyFloorOptimal) {
  const auto spec = kernels::make("vecadd", kernels::Scale::kSmall);
  const auto all =
      SearchSpace::standard(spec.desc, kArch).enumerate(spec.desc, kArch);
  const auto kept_tight = prune_variants(spec.desc, all, kArch, 1.0);
  const auto kept_loose = prune_variants(spec.desc, all, kArch, 100.0);
  EXPECT_LE(kept_tight.size(), kept_loose.size());
  EXPECT_EQ(kept_loose.size(), all.size());
}

TEST(Prune, RejectsSlackBelowOne) {
  const auto spec = kernels::make("vecadd", kernels::Scale::kSmall);
  const auto all =
      SearchSpace::standard(spec.desc, kArch).enumerate(spec.desc, kArch);
  EXPECT_THROW(prune_variants(spec.desc, all, kArch, 0.5), sw::Error);
}

TEST(Prune, RejectsIllegalVariantsExactlyLikeTheChecker) {
  // Mix legal tiles with SPM-overflowing ones and an illegal vector width;
  // with unbounded slack, what prune drops must be exactly the variants the
  // static checker flags with an error.
  const auto spec = kernels::make("vecadd", kernels::Scale::kSmall);
  std::vector<swacc::LaunchParams> all;
  for (const std::uint64_t tile : {8u, 64u, 512u, 4096u, 32768u}) {
    swacc::LaunchParams p;
    p.tile = tile;
    all.push_back(p);
    p.double_buffer = true;  // doubles the footprint: overflows earlier
    all.push_back(p);
  }
  swacc::LaunchParams bad_vw;
  bad_vw.tile = 8;
  bad_vw.vector_width = 3;  // only 1, 2 and 4 exist
  all.push_back(bad_vw);

  std::size_t checker_illegal = 0;
  for (const auto& v : all) {
    checker_illegal +=
        analysis::has_errors(analysis::check_launch(spec.desc, v, kArch))
            ? 1
            : 0;
  }
  ASSERT_GT(checker_illegal, 0u);
  ASSERT_LT(checker_illegal, all.size());

  PruneStats stats;
  const auto kept = prune_variants(spec.desc, all, kArch, 1e9, &stats);
  EXPECT_EQ(stats.illegal, checker_illegal);
  EXPECT_EQ(kept.size(), all.size() - checker_illegal);
  for (const auto& v : kept) {
    EXPECT_FALSE(
        analysis::has_errors(analysis::check_launch(spec.desc, v, kArch)))
        << v.to_string();
  }
}

TEST(Prune, ThrowsWhenEveryVariantIsIllegal) {
  const auto spec = kernels::make("vecadd", kernels::Scale::kSmall);
  swacc::LaunchParams p;
  p.tile = 0;
  EXPECT_THROW(prune_variants(spec.desc, {p}, kArch, 1.3), sw::Error);
}

TEST(Prune, BoundReflectsGloadFallback) {
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);
  swacc::LaunchParams below;
  below.tile = spec.desc.dma_min_tile / 2;
  swacc::LaunchParams above;
  above.tile = spec.desc.dma_min_tile;
  EXPECT_GT(variant_lower_bound_cycles(spec.desc, below, kArch),
            variant_lower_bound_cycles(spec.desc, above, kArch));
}

}  // namespace
}  // namespace swperf::tuning
