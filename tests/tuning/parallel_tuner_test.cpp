// The headline guarantee of the parallel tuning engine: any --jobs value
// returns *bit-identical* results to the serial tuner — same best params,
// same best cycles (exact double equality, not a tolerance), same
// hardware-equivalent campaign cost (same float-addition order), and the
// same explored list in the same order with the same values.
//
// Runs under the default preset and, via the `concurrency` ctest label,
// under the tsan preset, where it doubles as a race detector for the
// shard-evaluate-reduce pipeline.
#include "tuning/tuner.h"

#include <gtest/gtest.h>

#include "kernels/suite.h"

namespace swperf::tuning {
namespace {

const sw::ArchParams kArch;

TuningOptions jobs_opt(int jobs) {
  TuningOptions o;
  o.jobs = jobs;
  return o;
}

void expect_same_params(const swacc::LaunchParams& a,
                        const swacc::LaunchParams& b,
                        const std::string& what) {
  EXPECT_EQ(a.tile, b.tile) << what;
  EXPECT_EQ(a.unroll, b.unroll) << what;
  EXPECT_EQ(a.requested_cpes, b.requested_cpes) << what;
  EXPECT_EQ(a.double_buffer, b.double_buffer) << what;
  EXPECT_EQ(a.vector_width, b.vector_width) << what;
  EXPECT_EQ(a.coalesce_gloads, b.coalesce_gloads) << what;
}

void expect_bit_identical(const TuningResult& serial,
                          const TuningResult& parallel,
                          const std::string& what) {
  expect_same_params(serial.best, parallel.best, what + " best");
  // Exact equality: the evaluations are deterministic and the reduction
  // preserves the serial order, so there is no tolerance to grant.
  EXPECT_EQ(serial.best_measured_cycles, parallel.best_measured_cycles)
      << what;
  EXPECT_EQ(serial.tuning_seconds, parallel.tuning_seconds) << what;
  EXPECT_EQ(serial.variants, parallel.variants) << what;
  ASSERT_EQ(serial.explored.size(), parallel.explored.size()) << what;
  for (std::size_t i = 0; i < serial.explored.size(); ++i) {
    const auto& s = serial.explored[i];
    const auto& p = parallel.explored[i];
    expect_same_params(s.params, p.params,
                       what + " explored[" + std::to_string(i) + "]");
    EXPECT_EQ(s.predicted_cycles, p.predicted_cycles) << what << " [" << i
                                                      << "]";
    EXPECT_EQ(s.measured_cycles, p.measured_cycles) << what << " [" << i
                                                    << "]";
  }
}

// "Seeds" of the determinism property: each kernel is a distinct workload
// whose search space exercises different variant counts and cost spreads.
class ParallelMatchesSerial : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelMatchesSerial, EmpiricalTunerJobs8) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  const auto serial =
      EmpiricalTuner(kArch, {}, jobs_opt(1)).tune(spec.desc, space);
  const auto parallel =
      EmpiricalTuner(kArch, {}, jobs_opt(8)).tune(spec.desc, space);
  expect_bit_identical(serial, parallel, GetParam() + " empirical");
  EXPECT_EQ(parallel.stats.jobs, 8u);
}

TEST_P(ParallelMatchesSerial, StaticTunerJobs8) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  const auto serial =
      StaticTuner(kArch, {}, jobs_opt(1)).tune(spec.desc, space);
  const auto parallel =
      StaticTuner(kArch, {}, jobs_opt(8)).tune(spec.desc, space);
  expect_bit_identical(serial, parallel, GetParam() + " static");
}

TEST_P(ParallelMatchesSerial, OddJobCountsAndVectorSpace) {
  // A job count that does not divide the variant count, on the larger
  // vectorized space, for both tuners.
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const auto space = SearchSpace::with_vectorization(spec.desc, kArch);
  for (const int jobs : {2, 3, 5}) {
    const auto se =
        EmpiricalTuner(kArch, {}, jobs_opt(1)).tune(spec.desc, space);
    const auto pe =
        EmpiricalTuner(kArch, {}, jobs_opt(jobs)).tune(spec.desc, space);
    expect_bit_identical(se, pe,
                         GetParam() + " jobs=" + std::to_string(jobs));
  }
}

INSTANTIATE_TEST_SUITE_P(Table2Seeds, ParallelMatchesSerial,
                         ::testing::ValuesIn(kernels::table2_kernels()));

TEST(ParallelTuner, SharedCacheDoesNotChangeResults) {
  // Second campaign over the same space: every evaluation hits the cache,
  // the result stays bit-identical, and the counters balance.
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  auto cache = std::make_shared<EvalCache>();
  const EmpiricalTuner tuner(kArch, {}, {.jobs = 4, .cache = cache});
  const auto first = tuner.tune(spec.desc, space);
  const auto second = tuner.tune(spec.desc, space);
  expect_bit_identical(first, second, "cached rerun");
  EXPECT_EQ(first.stats.cache_hits, 0u);
  EXPECT_EQ(first.stats.cache_misses, first.stats.evaluations);
  EXPECT_EQ(second.stats.cache_hits, second.stats.evaluations);
  EXPECT_EQ(second.stats.cache_misses, 0u);
}

TEST(ParallelTuner, StaticAndEmpiricalStatsBalance) {
  const auto spec = kernels::make("hotspot", kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  for (const int jobs : {1, 8}) {
    const auto rs =
        StaticTuner(kArch, {}, jobs_opt(jobs)).tune(spec.desc, space);
    EXPECT_EQ(rs.stats.evaluations, rs.variants);
    EXPECT_EQ(rs.stats.cache_hits + rs.stats.cache_misses,
              rs.stats.evaluations);
  }
}

}  // namespace
}  // namespace swperf::tuning
