#include "tuning/space.h"

#include <gtest/gtest.h>

#include "kernels/hotspot.h"
#include "kernels/kmeans.h"
#include "kernels/vecadd.h"
#include "sw/error.h"
#include "swacc/lower.h"

namespace swperf::tuning {
namespace {

const sw::ArchParams kArch;

TEST(SearchSpace, StandardTilesArePowersOfTwoFittingSpm) {
  const auto spec = kernels::kmeans(kernels::Scale::kSmall);
  const auto s = SearchSpace::standard(spec.desc, kArch);
  ASSERT_FALSE(s.tiles.empty());
  EXPECT_EQ(s.tiles.front(), 1u);
  for (std::size_t i = 1; i < s.tiles.size(); ++i) {
    EXPECT_EQ(s.tiles[i], 2 * s.tiles[i - 1]);
  }
  swacc::LaunchParams probe;
  probe.tile = s.tiles.back();
  EXPECT_LE(swacc::spm_bytes_required(spec.desc, probe), kArch.spm_bytes);
  probe.tile = s.tiles.back() * 2;
  EXPECT_GT(swacc::spm_bytes_required(spec.desc, probe), kArch.spm_bytes);
}

TEST(SearchSpace, EnumeratePrunesInfeasibleVariants) {
  const auto spec = kernels::hotspot(kernels::Scale::kFull);
  SearchSpace s = SearchSpace::standard(spec.desc, kArch);
  s.double_buffer = {false, true};
  const auto variants = s.enumerate(spec.desc, kArch);
  EXPECT_LE(variants.size(), s.raw_size());
  for (const auto& v : variants) {
    EXPECT_NO_THROW(swacc::lower(spec.desc, v, kArch))
        << v.to_string();
  }
  // Double-buffered variants at the max tile must have been pruned (their
  // buffers would not fit twice).
  for (const auto& v : variants) {
    if (v.tile == s.tiles.back()) EXPECT_FALSE(v.double_buffer);
  }
}

TEST(SearchSpace, EnumerationIsDeterministic) {
  const auto spec = kernels::vecadd(kernels::Scale::kSmall);
  const auto s = SearchSpace::standard(spec.desc, kArch);
  const auto a = s.enumerate(spec.desc, kArch);
  const auto b = s.enumerate(spec.desc, kArch);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to_string(), b[i].to_string());
  }
}

TEST(SearchSpace, EmptySpaceThrows) {
  const auto spec = kernels::vecadd(kernels::Scale::kSmall);
  SearchSpace s;
  s.tiles = {1u << 30};  // absurd tile: everything pruned
  EXPECT_THROW(s.enumerate(spec.desc, kArch), sw::Error);
}

TEST(SearchSpace, RawSizeIsCartesianProduct) {
  SearchSpace s;
  s.tiles = {1, 2, 4};
  s.unrolls = {1, 2};
  s.cpes = {32, 64};
  s.double_buffer = {false, true};
  EXPECT_EQ(s.raw_size(), 3u * 2u * 2u * 2u);
}

}  // namespace
}  // namespace swperf::tuning
