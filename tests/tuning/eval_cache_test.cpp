// Property tests of the memoization cache's content key: any field
// mutation of a StaticSummary must change the key (no false hits),
// identical summaries must hit (no false misses), and the counters must
// balance: hits + misses == evaluations.
#include "tuning/eval_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sw/pool.h"
#include "sw/rng.h"

namespace swperf::tuning {
namespace {

swacc::StaticSummary random_summary(sw::Rng& rng) {
  swacc::StaticSummary s;
  s.kernel = "k" + std::to_string(rng.next_below(1000));
  s.params.tile = 1 + rng.next_below(4096);
  s.params.unroll = 1u << rng.next_below(4);
  s.params.requested_cpes = static_cast<std::uint32_t>(
      1 + rng.next_below(256));
  s.params.double_buffer = rng.next_below(2) == 1;
  s.params.vector_width = 1u << rng.next_below(3);
  s.params.coalesce_gloads = rng.next_below(2) == 1;
  s.active_cpes = static_cast<std::uint32_t>(1 + rng.next_below(64));
  s.core_groups = static_cast<std::uint32_t>(1 + rng.next_below(4));
  s.double_buffer = rng.next_below(2) == 1;
  const std::uint64_t n_reqs = rng.next_below(32);
  for (std::uint64_t i = 0; i < n_reqs; ++i) {
    s.dma_req_mrt.push_back(1 + rng.next_below(64));
  }
  s.n_gloads = rng.next_below(100000);
  s.comp_cycles = rng.uniform(0.0, 1e7);
  for (auto& c : s.inst_counts.counts) c = rng.next_below(1 << 20);
  s.dma_bytes_requested = rng.next_below(1ull << 30);
  s.dma_bytes_transferred = rng.next_below(1ull << 30);
  s.total_flops = rng.uniform(0.0, 1e9);
  return s;
}

/// Applies one of the possible single-field mutations, indexed so the test
/// can sweep all of them.
constexpr int kNumMutations = 17;
void mutate(swacc::StaticSummary& s, int which, sw::Rng& rng) {
  switch (which) {
    case 0: s.kernel += "x"; break;
    case 1: s.params.tile += 1; break;
    case 2: s.params.unroll += 1; break;
    case 3: s.params.requested_cpes += 1; break;
    case 4: s.params.double_buffer = !s.params.double_buffer; break;
    case 5: s.params.vector_width += 1; break;
    case 6: s.params.coalesce_gloads = !s.params.coalesce_gloads; break;
    case 7: s.active_cpes += 1; break;
    case 8: s.core_groups += 1; break;
    case 9: s.double_buffer = !s.double_buffer; break;
    case 10: s.dma_req_mrt.push_back(1 + rng.next_below(64)); break;
    case 11:
      if (s.dma_req_mrt.empty()) {
        s.dma_req_mrt.push_back(1);
      } else {
        s.dma_req_mrt[rng.next_below(s.dma_req_mrt.size())] += 1;
      }
      break;
    case 12: s.n_gloads += 1; break;
    case 13: s.comp_cycles += 1.0; break;
    case 14:
      s.inst_counts.counts[rng.next_below(isa::kNumOpClasses)] += 1;
      break;
    case 15: s.dma_bytes_requested += 1; break;
    case 16: s.total_flops += 1.0; break;
    default: FAIL() << "unknown mutation " << which;
  }
}

TEST(EvalCacheKey, EveryFieldMutationChangesTheKey) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xdecafull, 987654321ull}) {
    sw::Rng rng(seed);
    for (int rep = 0; rep < 50; ++rep) {
      const auto base = random_summary(rng);
      const std::string base_key = encode_summary(base);
      for (int m = 0; m < kNumMutations; ++m) {
        auto mutated = base;
        mutate(mutated, m, rng);
        EXPECT_NE(encode_summary(mutated), base_key)
            << "mutation " << m << " did not change the key (seed " << seed
            << ", rep " << rep << ")";
        EXPECT_NE(summary_hash(mutated), summary_hash(base))
            << "mutation " << m << " collided in the hash";
      }
    }
  }
}

TEST(EvalCacheKey, IdenticalSummariesShareTheKey) {
  sw::Rng rng(7);
  for (int rep = 0; rep < 100; ++rep) {
    const auto a = random_summary(rng);
    const auto b = a;  // deep copy
    EXPECT_EQ(encode_summary(a), encode_summary(b));
    EXPECT_EQ(summary_hash(a), summary_hash(b));
  }
}

TEST(EvalCacheKey, AppendedVectorElementDoesNotAliasTrailingFields) {
  // Length-prefixed encoding: moving a value from "first MRT" to "kernel
  // name suffix" territory must not produce the same bytes.
  swacc::StaticSummary a;
  a.kernel = "k";
  a.dma_req_mrt = {5};
  swacc::StaticSummary b;
  b.kernel = "k";
  b.dma_req_mrt = {};
  b.n_gloads = 5;
  EXPECT_NE(encode_summary(a), encode_summary(b));
}

TEST(EvalCache, HitsMissesAndEvaluationsBalance) {
  sw::Rng rng(99);
  EvalCache cache;
  std::vector<swacc::StaticSummary> pool;
  for (int i = 0; i < 20; ++i) pool.push_back(random_summary(rng));

  std::uint64_t evals = 0;
  std::uint64_t body_runs = 0;
  for (int round = 0; round < 5; ++round) {
    for (const auto& s : pool) {
      cache.get_or_eval(s, [&] {
        ++body_runs;
        return static_cast<double>(s.n_gloads);
      });
      ++evals;
    }
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, evals);
  EXPECT_EQ(st.misses, body_runs);
  EXPECT_EQ(st.misses, pool.size());       // each summary evaluated once
  EXPECT_EQ(cache.size(), pool.size());
  EXPECT_DOUBLE_EQ(st.hit_rate(), 0.8);    // 4 of 5 rounds hit

  double v = 0.0;
  EXPECT_TRUE(cache.peek(pool[0], &v));
  EXPECT_EQ(v, static_cast<double>(pool[0].n_gloads));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().evaluations(), 0u);
  EXPECT_FALSE(cache.peek(pool[0], &v));
}

TEST(EvalCache, ConcurrentMixedAccessIsConsistent) {
  // Hammer one cache from the pool with a mix of repeated and distinct
  // summaries; every returned value must match the summary it was asked
  // for, and the counters must balance.
  sw::Rng rng(123);
  std::vector<swacc::StaticSummary> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(random_summary(rng));

  EvalCache cache;
  constexpr std::uint64_t kOps = 512;
  std::vector<double> got(kOps);
  sw::parallel_for(kOps, 8, [&](std::uint64_t i) {
    const auto& s = pool[i % pool.size()];
    got[i] = cache.get_or_eval(s, [&] {
      return static_cast<double>(s.n_gloads) + s.comp_cycles;
    });
  });
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const auto& s = pool[i % pool.size()];
    EXPECT_EQ(got[i], static_cast<double>(s.n_gloads) + s.comp_cycles);
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, kOps);
  // Racing workers may each pay for the first evaluation of a summary, but
  // the map stores one entry per distinct summary.
  EXPECT_GE(st.misses, pool.size());
  EXPECT_EQ(cache.size(), pool.size());
}

}  // namespace
}  // namespace swperf::tuning
