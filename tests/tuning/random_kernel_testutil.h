// Seeded random (KernelDesc, LaunchParams) generator shared by the bound
// admissibility property test (bounds_test.cpp) and the branch-and-bound
// winner-identity test (bnb_tuner_test.cpp).
//
// The generator aims for *coverage of the bound's terms*, not realism:
// bodies mix pipelined FP chains, unpipelined div/sqrt and SPM traffic;
// arrays span every Access kind (contiguous, strided, 2D-block, broadcast,
// indirect); imbalance, coalescing and vectorizability all toggle.  Pairs
// the static checker rejects are discarded — the bound only promises
// admissibility for lowerable launches.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "analysis/checker.h"
#include "isa/block.h"
#include "sw/rng.h"
#include "swacc/kernel.h"

namespace swperf::tuning::testutil {

inline swacc::KernelDesc random_kernel(sw::Rng& rng) {
  swacc::KernelDesc k;
  k.name = "rand";
  k.n_outer = 64 + rng.next_below(4000);
  k.inner_iters = 1 + rng.next_below(24);

  isa::BlockBuilder b("body");
  const auto x = b.spm_load();
  auto acc = b.fadd(x, x);
  switch (rng.next_below(4)) {
    case 0:  // compute-heavy: independent pipelined chains
      acc = b.independent_flops(acc, 1 + static_cast<int>(rng.next_below(6)));
      break;
    case 1:  // unpipelined divide holds pipe 0 for its full latency
      acc = b.fdiv(acc, x);
      break;
    case 2:  // fma + sqrt mix
      acc = b.fma(acc, x, x);
      acc = b.fsqrt(acc);
      break;
    default:  // SPM-traffic heavy: extra load on pipe 1
      acc = b.fma(acc, b.spm_load(), x);
      break;
  }
  b.spm_store(acc);
  b.loop_overhead();
  k.body = std::move(b).build();

  const int n_staged = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < n_staged; ++i) {
    swacc::ArrayRef a;
    a.name = "a" + std::to_string(i);
    a.dir = i == 0 ? swacc::Dir::kIn
                   : (rng.next_below(3) == 0 ? swacc::Dir::kOut
                                             : swacc::Dir::kInOut);
    const std::uint32_t segs = 1 + static_cast<std::uint32_t>(rng.next_below(4));
    switch (rng.next_below(3)) {
      case 0:
        a.access = swacc::Access::kContiguous;
        a.bytes_per_outer = 8ull * (1 + rng.next_below(16));
        break;
      case 1:
        a.access = swacc::Access::kStrided;
        a.segments_per_outer = segs;
        a.bytes_per_outer = 8ull * segs * (1 + rng.next_below(8));
        break;
      default:
        a.access = swacc::Access::kBlock2D;
        a.segments_per_outer = segs;
        a.bytes_per_outer = 8ull * segs * (1 + rng.next_below(8));
        break;
    }
    k.arrays.push_back(a);
  }
  if (rng.next_below(2) == 0) {
    swacc::ArrayRef bc;
    bc.name = "bcast";
    bc.dir = swacc::Dir::kIn;
    bc.access = swacc::Access::kBroadcast;
    bc.broadcast_bytes = 256 + 8 * rng.next_below(512);
    k.arrays.push_back(bc);
  }
  if (rng.next_below(2) == 0) {
    swacc::ArrayRef ind;
    ind.name = "ind";
    ind.dir = swacc::Dir::kIn;
    ind.access = swacc::Access::kIndirect;
    ind.gloads_per_inner = 0.25 * (1 + rng.next_below(8));
    ind.gload_bytes = 8u << rng.next_below(3);  // 8, 16, 32
    k.arrays.push_back(ind);
    k.gload_coalesceable = rng.next_double();
    k.gload_imbalance = 0.3 * rng.next_double();
  }
  k.dma_min_tile = 1 + rng.next_below(32);
  k.vectorizable = rng.next_below(2) == 0;
  k.comp_imbalance = 0.3 * rng.next_double();
  return k;
}

inline swacc::LaunchParams random_params(const swacc::KernelDesc& k,
                                         sw::Rng& rng) {
  swacc::LaunchParams p;
  p.tile = 1ull << rng.next_below(9);  // 1 .. 256
  p.unroll = 1u << rng.next_below(4);  // 1 .. 8
  p.requested_cpes = static_cast<std::uint32_t>(1 + rng.next_below(128));
  p.double_buffer = rng.next_below(2) == 0;
  p.vector_width = k.vectorizable ? (1u << rng.next_below(3)) : 1;
  p.coalesce_gloads = rng.next_below(2) == 0;
  return p;
}

/// Draws until the static checker accepts the pair (the generators are
/// tuned so rejections — SPM overflow at big tiles, mostly — are rare).
inline std::pair<swacc::KernelDesc, swacc::LaunchParams> random_valid_pair(
    sw::Rng& rng, const sw::ArchParams& arch) {
  for (;;) {
    swacc::KernelDesc k = random_kernel(rng);
    swacc::LaunchParams p = random_params(k, rng);
    if (!analysis::has_errors(analysis::check_launch(k, p, arch))) {
      return {std::move(k), p};
    }
  }
}

}  // namespace swperf::tuning::testutil
