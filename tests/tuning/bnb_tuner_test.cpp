// The branch-and-bound static tuner's headline guarantee: the winner is
// *bit-identical* to exhaustive enumeration — same best params (by the
// canonical encoding), same validated cycles, same model minimum — at any
// --jobs value, while evaluating only a subset of the space.
//
// Runs under the default preset and, via the `concurrency` ctest label,
// under the tsan preset, where the shared-incumbent atomic and the
// skeleton cache level get hammered by real worker threads.
#include "tuning/tuner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>

#include "kernels/suite.h"
#include "tuning/eval_cache.h"
#include "tuning/space.h"

#include "random_kernel_testutil.h"

namespace swperf::tuning {
namespace {

const sw::ArchParams kArch;

TuningOptions opt(int jobs, bool bnb) {
  TuningOptions o;
  o.jobs = jobs;
  o.branch_and_bound = bnb;
  return o;
}

double min_predicted(const TuningResult& r) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& v : r.explored) best = std::min(best, v.predicted_cycles);
  return best;
}

void expect_same_winner(const swacc::KernelDesc& kernel,
                        const TuningResult& exhaustive,
                        const TuningResult& bnb, const std::string& what) {
  // Same `best` encoding: the canonical pre-lowering key covers every
  // LaunchParams field, so equal keys mean equal winners bit for bit.
  EXPECT_EQ(prelower_key(kernel, exhaustive.best, kArch),
            prelower_key(kernel, bnb.best, kArch))
      << what << ": " << exhaustive.best.to_string() << " vs "
      << bnb.best.to_string();
  EXPECT_EQ(exhaustive.best_measured_cycles, bnb.best_measured_cycles)
      << what;
  EXPECT_EQ(min_predicted(exhaustive), min_predicted(bnb)) << what;
}

void expect_accounting(const TuningResult& bnb, const TuningResult& exhaustive,
                       const std::string& what) {
  EXPECT_EQ(bnb.variants, exhaustive.variants) << what;
  EXPECT_EQ(bnb.explored.size(), bnb.stats.evaluations) << what;
  EXPECT_EQ(bnb.stats.evaluations + bnb.stats.bound_pruned, bnb.variants)
      << what;
  EXPECT_LE(bnb.explored.size(), exhaustive.explored.size()) << what;
}

class BnbMatchesExhaustive : public ::testing::TestWithParam<std::string> {};

TEST_P(BnbMatchesExhaustive, StandardSpaceAtJobs1And8) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  const auto exhaustive =
      StaticTuner(kArch, {}, opt(1, false)).tune(spec.desc, space);
  for (const int jobs : {1, 8}) {
    const auto bnb =
        StaticTuner(kArch, {}, opt(jobs, true)).tune(spec.desc, space);
    const std::string what = GetParam() + " jobs=" + std::to_string(jobs);
    expect_same_winner(spec.desc, exhaustive, bnb, what);
    expect_accounting(bnb, exhaustive, what);
  }
}

TEST_P(BnbMatchesExhaustive, VectorizedSpace) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const auto space = SearchSpace::with_vectorization(spec.desc, kArch);
  const auto exhaustive =
      StaticTuner(kArch, {}, opt(1, false)).tune(spec.desc, space);
  for (const int jobs : {1, 8}) {
    const auto bnb =
        StaticTuner(kArch, {}, opt(jobs, true)).tune(spec.desc, space);
    const std::string what =
        GetParam() + " vector jobs=" + std::to_string(jobs);
    expect_same_winner(spec.desc, exhaustive, bnb, what);
    expect_accounting(bnb, exhaustive, what);
  }
}

INSTANTIATE_TEST_SUITE_P(Table2, BnbMatchesExhaustive,
                         ::testing::ValuesIn(kernels::table2_kernels()));

TEST(BnbTuner, ParallelEvaluatesTheExactSerialSubset) {
  // Not just the winner: the evaluated set itself must be jobs-invariant
  // (the incumbent is published only between fixed rounds, so pruning
  // decisions cannot depend on worker timing).
  for (const auto& name : kernels::table2_kernels()) {
    const auto spec = kernels::make(name, kernels::Scale::kSmall);
    const auto space = SearchSpace::standard(spec.desc, kArch);
    const auto serial =
        StaticTuner(kArch, {}, opt(1, true)).tune(spec.desc, space);
    const auto parallel =
        StaticTuner(kArch, {}, opt(8, true)).tune(spec.desc, space);
    EXPECT_EQ(serial.stats.bound_pruned, parallel.stats.bound_pruned) << name;
    EXPECT_EQ(serial.tuning_seconds, parallel.tuning_seconds) << name;
    ASSERT_EQ(serial.explored.size(), parallel.explored.size()) << name;
    for (std::size_t i = 0; i < serial.explored.size(); ++i) {
      EXPECT_EQ(prelower_key(spec.desc, serial.explored[i].params, kArch),
                prelower_key(spec.desc, parallel.explored[i].params, kArch))
          << name << " explored[" << i << "]";
      EXPECT_EQ(serial.explored[i].predicted_cycles,
                parallel.explored[i].predicted_cycles)
          << name << " explored[" << i << "]";
    }
  }
}

TEST(BnbTuner, RandomKernelsAcrossTenSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sw::Rng rng(seed * 0x9e3779b9u);
    const auto [kernel, unused] = testutil::random_valid_pair(rng, kArch);
    (void)unused;
    const auto space = SearchSpace::standard(kernel, kArch);
    const auto exhaustive =
        StaticTuner(kArch, {}, opt(1, false)).tune(kernel, space);
    for (const int jobs : {1, 8}) {
      const auto bnb =
          StaticTuner(kArch, {}, opt(jobs, true)).tune(kernel, space);
      const std::string what = "seed=" + std::to_string(seed) +
                               " jobs=" + std::to_string(jobs);
      expect_same_winner(kernel, exhaustive, bnb, what);
      expect_accounting(bnb, exhaustive, what);
    }
  }
}

TEST(BnbTuner, ActuallyPrunesAndReusesSkeletons) {
  // The two new counters must both engage on the kmeans standard space
  // (serial, so the skeleton count is deterministic: one build per
  // distinct unroll among evaluated variants, reuses for the rest).
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  const auto bnb = StaticTuner(kArch, {}, opt(1, true)).tune(spec.desc, space);
  EXPECT_GT(bnb.stats.bound_pruned, 0u);
  EXPECT_GT(bnb.stats.skeleton_reuses, 0u);

  const auto exhaustive =
      StaticTuner(kArch, {}, opt(1, false)).tune(spec.desc, space);
  EXPECT_EQ(exhaustive.stats.bound_pruned, 0u);
  EXPECT_GT(exhaustive.stats.skeleton_reuses, 0u);
  EXPECT_EQ(exhaustive.stats.evaluations, exhaustive.variants);
}

TEST(BnbTuner, EmpiricalTunerIgnoresTheFlag) {
  // The bound is proven against the model, not the simulator: the
  // empirical tuner must keep evaluating everything.
  const auto spec = kernels::make("lud", kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  const auto r = EmpiricalTuner(kArch, {}, opt(1, true)).tune(spec.desc, space);
  EXPECT_EQ(r.stats.evaluations, r.variants);
  EXPECT_EQ(r.stats.bound_pruned, 0u);
  EXPECT_EQ(r.explored.size(), r.variants);
}

TEST(BnbTuner, SharedCacheSecondRunPrunesIdentically) {
  // A warm shared cache changes the cost, never the decisions.
  const auto spec = kernels::make("backprop", kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  auto cache = std::make_shared<EvalCache>();
  TuningOptions o;
  o.jobs = 4;
  o.cache = cache;
  o.branch_and_bound = true;
  const StaticTuner tuner(kArch, {}, o);
  const auto first = tuner.tune(spec.desc, space);
  const auto second = tuner.tune(spec.desc, space);
  expect_same_winner(spec.desc, first, second, "warm rerun");
  EXPECT_EQ(first.stats.bound_pruned, second.stats.bound_pruned);
  EXPECT_EQ(first.explored.size(), second.explored.size());
  EXPECT_EQ(second.stats.cache_hits, second.stats.evaluations);
}

}  // namespace
}  // namespace swperf::tuning
