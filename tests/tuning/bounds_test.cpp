// Admissibility of the analytic lower bound (tuning/bounds.h): for every
// lowerable (kernel, variant) pair, each CycleBound term must understate
// its model counterpart and the combined bound must understate the full
// prediction — with NO tolerance.  The bound's internal kFloatSafety
// deflation is what absorbs rounding; if these assertions ever need a
// tolerance, branch-and-bound's exactness proof is broken.
//
// Runs under the `concurrency` ctest label (with the other tuning-engine
// tests) so the tsan preset covers the BoundEvaluator too.
#include "tuning/bounds.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "kernels/suite.h"
#include "model/model.h"
#include "sw/error.h"
#include "swacc/lower.h"
#include "tuning/prune.h"
#include "tuning/space.h"

#include "random_kernel_testutil.h"

namespace swperf::tuning {
namespace {

const sw::ArchParams kArch;

void expect_admissible(const swacc::KernelDesc& kernel,
                       const swacc::LaunchParams& v,
                       const BoundEvaluator& evaluator,
                       const model::PerfModel& pm, const std::string& what) {
  const CycleBound b = evaluator.bound(v);
  const auto lowered = swacc::lower(kernel, v, kArch);
  const auto p = pm.predict(lowered.summary);
  // Term-by-term: both memory views bound T_mem (= T_DMA + T_g), the
  // compute floor bounds T_comp, and the max bounds T_total.
  EXPECT_LE(b.mem_roofline, p.t_mem) << what;
  EXPECT_LE(b.dma_latency, p.t_mem) << what;
  EXPECT_LE(b.compute, p.t_comp) << what;
  EXPECT_LE(b.value(), p.t_total) << what;
  EXPECT_GT(b.value(), 0.0) << what;
}

// ---- Random pairs: 5 seeds x 50 trials = 250 lowerable pairs. --------------

class BoundAdmissibility : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundAdmissibility, RandomPairsNeverExceedTheModel) {
  sw::Rng rng(GetParam());
  const model::PerfModel pm(kArch);
  for (int trial = 0; trial < 50; ++trial) {
    const auto [kernel, v] = testutil::random_valid_pair(rng, kArch);
    const BoundEvaluator evaluator(kernel, kArch);
    expect_admissible(kernel, v, evaluator, pm,
                      "seed=" + std::to_string(GetParam()) + " trial=" +
                          std::to_string(trial) + " " + v.to_string());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundAdmissibility,
                         ::testing::Values(0x101u, 0x202u, 0x303u, 0x404u,
                                           0x505u));

// ---- The paper's kernels, full standard + vectorized spaces. ---------------

class BoundAdmissibilityPaperSet
    : public ::testing::TestWithParam<std::string> {};

TEST_P(BoundAdmissibilityPaperSet, EveryVariantOfTheTuningSpaces) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const model::PerfModel pm(kArch);
  const BoundEvaluator evaluator(spec.desc, kArch);
  for (const auto* space_kind : {"standard", "vector"}) {
    const auto space =
        std::string(space_kind) == "standard"
            ? SearchSpace::standard(spec.desc, kArch)
            : SearchSpace::with_vectorization(spec.desc, kArch);
    for (const auto& v : space.enumerate(spec.desc, kArch)) {
      expect_admissible(spec.desc, v, evaluator, pm,
                        GetParam() + " " + space_kind + " " + v.to_string());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperSet, BoundAdmissibilityPaperSet,
                         ::testing::ValuesIn(kernels::table2_kernels()));

// ---- Legacy sieve: hoisting must not change a single bit. ------------------

TEST(Bounds, PruneFloorIsExactlyTheLegacyBound) {
  // variant_lower_bound_cycles routes through a fresh one-shot evaluator;
  // a campaign-hoisted evaluator must produce the identical double.
  for (const auto& name : kernels::table2_kernels()) {
    const auto spec = kernels::make(name, kernels::Scale::kSmall);
    const BoundEvaluator hoisted(spec.desc, kArch);
    const auto space = SearchSpace::standard(spec.desc, kArch);
    for (const auto& v : space.enumerate(spec.desc, kArch)) {
      EXPECT_EQ(hoisted.prune_floor(v),
                variant_lower_bound_cycles(spec.desc, v, kArch))
          << name << " " << v.to_string();
    }
  }
}

TEST(Bounds, HoistedPruneMatchesPerVariantSieve) {
  // Replay prune_variants' sieve with a fresh evaluator per candidate and
  // require the identical kept set — the micro-assert for the hoisting.
  for (const auto& name : kernels::table2_kernels()) {
    const auto spec = kernels::make(name, kernels::Scale::kSmall);
    const auto all =
        SearchSpace::standard(spec.desc, kArch).enumerate(spec.desc, kArch);
    PruneStats stats;
    const auto kept = prune_variants(spec.desc, all, kArch, 1.3, &stats);

    double best = std::numeric_limits<double>::infinity();
    std::vector<double> floors;
    for (const auto& v : all) {
      floors.push_back(variant_lower_bound_cycles(spec.desc, v, kArch));
      best = std::min(best, floors.back());
    }
    std::vector<std::string> expect_kept;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (floors[i] <= best * 1.3) expect_kept.push_back(all[i].to_string());
    }
    ASSERT_EQ(kept.size(), expect_kept.size()) << name;
    for (std::size_t i = 0; i < kept.size(); ++i) {
      EXPECT_EQ(kept[i].to_string(), expect_kept[i]) << name;
    }
    // Counter bookkeeping: every considered variant is accounted for.
    EXPECT_EQ(stats.considered, all.size()) << name;
    EXPECT_EQ(stats.illegal + stats.kept + stats.bound_pruned,
              stats.considered)
        << name;
  }
}

TEST(Bounds, RejectsDegenerateLaunchParameters) {
  const auto spec = kernels::make("vecadd", kernels::Scale::kSmall);
  const BoundEvaluator evaluator(spec.desc, kArch);
  swacc::LaunchParams p;
  p.tile = 0;
  EXPECT_THROW(evaluator.bound(p), sw::Error);
  EXPECT_THROW(evaluator.prune_floor(p), sw::Error);
}

}  // namespace
}  // namespace swperf::tuning
