// The pre-lowering level of the two-level EvalCache: the content key over
// (KernelDesc, LaunchParams, ArchParams) must be exactly as fine as the
// lowering inputs (no false hits under mutation, no false misses on equal
// inputs), a prekey hit must skip the lowering callback entirely, the
// summary level must keep serving as the collision guard across distinct
// prekeys, and all of it must hold under concurrent mixed access.
#include "tuning/eval_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "kernels/suite.h"
#include "sw/rng.h"

namespace swperf::tuning {
namespace {

swacc::KernelDesc base_kernel() {
  return kernels::make("vecadd", kernels::Scale::kSmall).desc;
}

swacc::LaunchParams base_params() {
  swacc::LaunchParams p;
  p.tile = 256;
  p.unroll = 2;
  p.requested_cpes = 64;
  return p;
}

TEST(PrelowerKey, IdenticalInputsShareTheKey) {
  const sw::ArchParams arch;
  const swacc::KernelDesc k1 = base_kernel();
  const swacc::KernelDesc k2 = base_kernel();
  EXPECT_EQ(prelower_key(k1, base_params(), arch),
            prelower_key(k2, base_params(), arch));

  // The prefix-building form agrees with the one-shot form.
  const PrelowerKey pk(k1, arch);
  EXPECT_EQ(pk.key(base_params()), prelower_key(k1, base_params(), arch));
}

TEST(PrelowerKey, KernelParamAndArchMutationsChangeTheKey) {
  const sw::ArchParams arch;
  const swacc::KernelDesc k = base_kernel();
  const swacc::LaunchParams p = base_params();
  const std::string key = prelower_key(k, p, arch);

  {
    swacc::KernelDesc m = k;
    m.n_outer += 1;
    EXPECT_NE(prelower_key(m, p, arch), key);
  }
  {
    swacc::KernelDesc m = k;
    m.name += "x";
    EXPECT_NE(prelower_key(m, p, arch), key);
  }
  {
    swacc::KernelDesc m = k;
    ASSERT_FALSE(m.arrays.empty());
    m.arrays[0].bytes_per_outer += 8;
    EXPECT_NE(prelower_key(m, p, arch), key);
  }
  {
    swacc::LaunchParams m = p;
    m.tile *= 2;
    EXPECT_NE(prelower_key(k, m, arch), key);
  }
  {
    swacc::LaunchParams m = p;
    m.double_buffer = !m.double_buffer;
    EXPECT_NE(prelower_key(k, m, arch), key);
  }
  {
    sw::ArchParams m = arch;
    m.delta_delay_cycles += 1;
    EXPECT_NE(prelower_key(k, p, m), key);
  }
}

/// Stand-in for a LoweredKernel: the cache only touches `.summary`.
struct FakeLowered {
  swacc::StaticSummary summary;
};

TEST(PrelowerCache, PrekeyHitSkipsTheLoweringCallback) {
  EvalCache cache;
  FakeLowered lowered;
  lowered.summary.kernel = "k";
  lowered.summary.comp_cycles = 123.0;

  int lowers = 0;
  int evals = 0;
  auto lower = [&] {
    ++lowers;
    return &lowered;
  };
  auto eval = [&](const FakeLowered&) {
    ++evals;
    return 42.0;
  };

  EXPECT_EQ(cache.get_or_lower_eval("prekey-a", lower, eval), 42.0);
  EXPECT_EQ(lowers, 1);
  EXPECT_EQ(evals, 1);

  // Same prekey again: neither lowering nor evaluation runs.
  EXPECT_EQ(cache.get_or_lower_eval("prekey-a", lower, eval), 42.0);
  EXPECT_EQ(lowers, 1);
  EXPECT_EQ(evals, 1);

  const EvalCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.lowers_skipped, 1u);
  EXPECT_EQ(cache.prelower_size(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PrelowerCache, SummaryLevelGuardsAcrossDistinctPrekeys) {
  EvalCache cache;
  FakeLowered lowered;
  lowered.summary.kernel = "same-summary";

  int lowers = 0;
  int evals = 0;
  auto lower = [&] {
    ++lowers;
    return &lowered;
  };
  auto eval = [&](const FakeLowered&) {
    ++evals;
    return 7.0;
  };

  EXPECT_EQ(cache.get_or_lower_eval("prekey-1", lower, eval), 7.0);
  // A different prekey lowering to the same summary must re-lower (the
  // prekey is unseen) but hit at the summary level — no re-evaluation.
  EXPECT_EQ(cache.get_or_lower_eval("prekey-2", lower, eval), 7.0);
  EXPECT_EQ(lowers, 2);
  EXPECT_EQ(evals, 1);

  const EvalCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.lowers_skipped, 0u)
      << "a summary-level hit still paid for the lowering";
  EXPECT_EQ(cache.prelower_size(), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PrelowerCache, ClearDropsBothLevels) {
  EvalCache cache;
  FakeLowered lowered;
  lowered.summary.kernel = "k";
  auto lower = [&] { return &lowered; };
  auto eval = [](const FakeLowered&) { return 1.0; };
  (void)cache.get_or_lower_eval("p", lower, eval);
  (void)cache.get_or_lower_eval("p", lower, eval);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.prelower_size(), 0u);
  const EvalCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.lowers_skipped, 0u);
}

TEST(PrelowerCache, ConcurrentAccessStaysConsistent) {
  EvalCache cache;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  constexpr int kDistinctKeys = 12;

  // One summary per distinct prekey, so values are deterministic.
  std::vector<FakeLowered> lowereds(kDistinctKeys);
  for (int i = 0; i < kDistinctKeys; ++i) {
    lowereds[i].summary.kernel = "k" + std::to_string(i);
    lowereds[i].summary.comp_cycles = static_cast<double>(i);
  }

  std::atomic<std::uint64_t> total_evals{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sw::Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = static_cast<int>(rng.next_below(kDistinctKeys));
        const double got = cache.get_or_lower_eval(
            "concurrent-" + std::to_string(k),
            [&] { return &lowereds[k]; },
            [&](const FakeLowered& fl) {
              total_evals.fetch_add(1, std::memory_order_relaxed);
              return fl.summary.comp_cycles * 10.0;
            });
        ASSERT_EQ(got, static_cast<double>(k) * 10.0);
      }
    });
  }
  for (auto& th : threads) th.join();

  const EvalCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  // Racing threads may each pay for an evaluation of the same key once,
  // but misses never exceed evaluations actually performed.
  EXPECT_EQ(s.misses, total_evals.load());
  EXPECT_GE(s.misses, static_cast<std::uint64_t>(kDistinctKeys));
  EXPECT_EQ(cache.prelower_size(), static_cast<std::size_t>(kDistinctKeys));
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kDistinctKeys));
  EXPECT_LE(s.lowers_skipped, s.hits);
}

}  // namespace
}  // namespace swperf::tuning
