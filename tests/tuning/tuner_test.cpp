#include "tuning/tuner.h"

#include <gtest/gtest.h>

#include "kernels/suite.h"
#include "sim/machine.h"
#include "swacc/lower.h"

namespace swperf::tuning {
namespace {

const sw::ArchParams kArch;

double measured(const swacc::KernelDesc& k, const swacc::LaunchParams& p) {
  const auto lk = swacc::lower(k, p, kArch);
  return sim::simulate(lk.sim_config, lk.binary, lk.programs).total_cycles();
}

class Table2Kernel : public ::testing::TestWithParam<std::string> {};

TEST_P(Table2Kernel, StaticWithinSixPercentOfEmpirical) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  const auto rs = StaticTuner(kArch).tune(spec.desc, space);
  const auto re = EmpiricalTuner(kArch).tune(spec.desc, space);
  // The paper's quality bound: static tuning loses < 6% (we allow 8% at
  // the reduced test scale).
  EXPECT_LE(rs.best_measured_cycles, re.best_measured_cycles * 1.08)
      << "static " << rs.best.to_string() << " vs empirical "
      << re.best.to_string();
  // And the empirical pick is by construction the measured optimum.
  for (const auto& v : re.explored) {
    EXPECT_GE(v.measured_cycles, re.best_measured_cycles);
  }
}

TEST_P(Table2Kernel, TuningBeatsNaiveBaseline) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  const auto rs = StaticTuner(kArch).tune(spec.desc, space);
  const double naive = measured(spec.desc, spec.naive);
  EXPECT_LT(rs.best_measured_cycles, naive * 1.001);
}

TEST_P(Table2Kernel, StaticTuningIsFarCheaper) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  const auto rs = StaticTuner(kArch).tune(spec.desc, space);
  const auto re = EmpiricalTuner(kArch).tune(spec.desc, space);
  EXPECT_EQ(rs.variants, re.variants);
  // Hardware-equivalent campaign cost: the paper reports 26-43x savings.
  EXPECT_GT(re.tuning_seconds / rs.tuning_seconds, 2.0);
  // Actual host time: model evaluation vs simulating every variant.
  EXPECT_LT(rs.host_seconds, re.host_seconds);
}

INSTANTIATE_TEST_SUITE_P(PaperSet, Table2Kernel,
                         ::testing::ValuesIn(kernels::table2_kernels()));

TEST(Tuner, ExploredRecordsMatchMode) {
  const auto spec = kernels::make("vecadd", kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  const auto rs = StaticTuner(kArch).tune(spec.desc, space);
  for (const auto& v : rs.explored) {
    EXPECT_GT(v.predicted_cycles, 0.0);
    EXPECT_EQ(v.measured_cycles, 0.0);
  }
  const auto re = EmpiricalTuner(kArch).tune(spec.desc, space);
  for (const auto& v : re.explored) {
    EXPECT_GT(v.measured_cycles, 0.0);
    EXPECT_EQ(v.predicted_cycles, 0.0);
  }
}

TEST(Tuner, CostModelScalesWithRuns) {
  const auto spec = kernels::make("vecadd", kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  TuningCosts one;
  one.runs_per_variant = 1;
  TuningCosts ten;
  ten.runs_per_variant = 10;
  const auto r1 = EmpiricalTuner(kArch, one).tune(spec.desc, space);
  const auto r10 = EmpiricalTuner(kArch, ten).tune(spec.desc, space);
  EXPECT_GT(r10.tuning_seconds, r1.tuning_seconds * 5.0);
  EXPECT_EQ(r1.best.to_string(), r10.best.to_string());
}

TEST(Tuner, StaticTieBreakPrefersFinerGranularity) {
  // Among model-equivalent variants the static tuner must encode Eq. 13's
  // preference (smaller tiles / more requests), never picking a strictly
  // coarser variant of equal predicted time.
  const auto spec = kernels::make("vecadd", kernels::Scale::kSmall);
  SearchSpace space = SearchSpace::standard(spec.desc, kArch);
  const auto rs = StaticTuner(kArch).tune(spec.desc, space);
  double best_pred = rs.explored.front().predicted_cycles;
  for (const auto& v : rs.explored) {
    best_pred = std::min(best_pred, v.predicted_cycles);
  }
  for (const auto& v : rs.explored) {
    if (v.predicted_cycles <= best_pred * 1.01) {
      EXPECT_LE(rs.best.tile, v.params.tile);
    }
  }
}

}  // namespace
}  // namespace swperf::tuning
