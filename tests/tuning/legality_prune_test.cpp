// The prune layer rebuilt on analysis::Legality must be indistinguishable
// from the check_launch scraping it replaced: the stage-1 verdict is the
// same on every variant, PruneStats bookkeeping stays consistent, and the
// tuners' winners/explored sets remain bit-identical across job counts on
// the Table II kernels. Runs under the `concurrency` label so the tsan
// preset exercises the jobs=8 path.
#include "tuning/prune.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "analysis/checker.h"
#include "analysis/legality.h"
#include "kernels/suite.h"
#include "tuning/tuner.h"

namespace swperf::tuning {
namespace {

const sw::ArchParams kArch = sw::ArchParams::sw26010();

std::string safe_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

/// A raw cartesian grid, deliberately including variants the checker must
/// reject (SPM overflow, degenerate tiles are excluded by construction).
std::vector<swacc::LaunchParams> raw_grid(const swacc::KernelDesc& k) {
  std::vector<swacc::LaunchParams> grid;
  for (const std::uint64_t tile :
       {std::uint64_t{1}, std::uint64_t{16}, std::uint64_t{256},
        std::uint64_t{k.n_outer}, std::uint64_t{k.n_outer} * 8}) {
    for (const std::uint32_t unroll : {1u, 4u}) {
      for (const bool db : {false, true}) {
        swacc::LaunchParams p;
        p.tile = tile;
        p.unroll = unroll;
        p.double_buffer = db;
        grid.push_back(p);
      }
    }
  }
  return grid;
}

class LegalityPrune : public ::testing::TestWithParam<std::string> {};

TEST_P(LegalityPrune, StageOneVerdictMatchesCheckLaunchOnEveryVariant) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  for (const auto& v : raw_grid(spec.desc)) {
    const bool legality =
        analysis::launch_legality(spec.desc, v, kArch).launch_legal;
    const bool scraping =
        !analysis::has_errors(analysis::check_launch(spec.desc, v, kArch));
    EXPECT_EQ(legality, scraping) << GetParam() << " @ " << v.to_string();
  }
}

TEST_P(LegalityPrune, PruneStatsBookkeepingStaysConsistent) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const auto grid = raw_grid(spec.desc);
  PruneStats stats;
  const auto kept = prune_variants(spec.desc, grid, kArch, 1.3, &stats);
  EXPECT_EQ(stats.considered, grid.size());
  EXPECT_EQ(stats.kept, kept.size());
  EXPECT_EQ(stats.pruned(), stats.illegal + stats.bound_pruned);

  // The illegal count is exactly the number of error-verdict variants.
  std::size_t expect_illegal = 0;
  for (const auto& v : grid) {
    expect_illegal +=
        analysis::launch_legality(spec.desc, v, kArch).launch_legal ? 0 : 1;
  }
  EXPECT_EQ(stats.illegal, expect_illegal);

  // Every survivor is legal and appears in input order.
  std::size_t cursor = 0;
  for (const auto& k : kept) {
    while (cursor < grid.size() &&
           grid[cursor].to_string() != k.to_string()) {
      ++cursor;
    }
    ASSERT_LT(cursor, grid.size()) << "kept variant not in input order";
    EXPECT_TRUE(
        analysis::launch_legality(spec.desc, k, kArch).launch_legal);
  }
}

void expect_same_params(const swacc::LaunchParams& a,
                        const swacc::LaunchParams& b,
                        const std::string& what) {
  EXPECT_EQ(a.tile, b.tile) << what;
  EXPECT_EQ(a.unroll, b.unroll) << what;
  EXPECT_EQ(a.requested_cpes, b.requested_cpes) << what;
  EXPECT_EQ(a.double_buffer, b.double_buffer) << what;
  EXPECT_EQ(a.vector_width, b.vector_width) << what;
  EXPECT_EQ(a.coalesce_gloads, b.coalesce_gloads) << what;
}

TEST_P(LegalityPrune, StaticWinnersBitIdenticalAtJobs1And8) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const auto space = SearchSpace::standard(spec.desc, kArch);
  TuningOptions serial;
  serial.jobs = 1;
  TuningOptions parallel;
  parallel.jobs = 8;
  const auto r1 = StaticTuner(kArch, {}, serial).tune(spec.desc, space);
  const auto r8 = StaticTuner(kArch, {}, parallel).tune(spec.desc, space);

  expect_same_params(r1.best, r8.best, GetParam() + " best");
  EXPECT_EQ(r1.best_measured_cycles, r8.best_measured_cycles);
  EXPECT_EQ(r1.variants, r8.variants);
  EXPECT_EQ(r1.stats.evaluations, r8.stats.evaluations);
  EXPECT_EQ(r1.stats.bound_pruned, r8.stats.bound_pruned);
  ASSERT_EQ(r1.explored.size(), r8.explored.size());
  for (std::size_t i = 0; i < r1.explored.size(); ++i) {
    expect_same_params(r1.explored[i].params, r8.explored[i].params,
                       GetParam() + " explored[" + std::to_string(i) + "]");
    EXPECT_EQ(r1.explored[i].predicted_cycles,
              r8.explored[i].predicted_cycles);
    EXPECT_EQ(r1.explored[i].measured_cycles,
              r8.explored[i].measured_cycles);
  }
}

INSTANTIATE_TEST_SUITE_P(TableTwoKernels, LegalityPrune,
                         ::testing::ValuesIn(kernels::table2_kernels()),
                         safe_name);

}  // namespace
}  // namespace swperf::tuning
