// Golden regression tests: the simulator and the model are fully
// deterministic, so every kernel's cycle counts are pinned exactly.
//
// Purpose: any change to the scheduler, the memory controller's
// arbitration, the lowering, or the model equations that shifts timing —
// intentionally or not — must show up here and be re-baselined
// consciously (the EXPERIMENTS.md numbers depend on these behaviours).
//
// Regenerate after an intentional change with:
//   for k in $(build/tools/swperf list | cut -d' ' -f1); do
//     build/tools/swperf simulate $k --small; done
// or the snippet in this file's history.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "kernels/suite.h"
#include "model/model.h"
#include "sim/machine.h"
#include "swacc/lower.h"

namespace swperf {
namespace {

struct Golden {
  const char* kernel;
  std::uint64_t sim_ticks;   // exact
  double model_cycles;       // to 0.1 cycles
};

// Baselines: tuned presets at Scale::kSmall, Table I parameters.
// vecadd's tick count is also pinned by
// tests/sim/concurrent_machine_test.cpp (simulator re-entrancy) —
// re-baseline both together.
constexpr Golden kGolden[] = {
    {"vecadd", 714788ull, 71270.4},
    {"kmeans", 2460402ull, 185993.8},
    {"cfd", 2145902ull, 242022.4},
    {"lud", 1024584ull, 100966.4},
    {"hotspot", 382684ull, 35635.2},
    {"backprop", 894252ull, 62191.9},
    {"nbody", 3858732ull, 383750.4},
    {"bfs", 9791364ull, 1098752.0},
    {"b+tree", 9939646ull, 990880.6},
    {"streamcluster", 15839554ull, 1717913.6},
    {"leukocyte", 5145415ull, 462965.6},
    {"pathfinder", 1417192ull, 104586.4},
    {"srad", 882812ull, 85503.2},
    {"nw", 1442340ull, 144025.6},
    {"gaussian", 254500ull, 25241.6},
    {"wrf_dynamics", 2852900ull, 285081.6},
    {"wrf_physics", 2270956ull, 209516.4},
};

class GoldenRegression : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenRegression, SimulatedTicksPinned) {
  const auto& g = GetParam();
  const auto spec = kernels::make(g.kernel, kernels::Scale::kSmall);
  const auto lk =
      swacc::lower(spec.desc, spec.tuned, sw::ArchParams::sw26010());
  const auto r = sim::simulate(lk.sim_config, lk.binary, lk.programs);
  EXPECT_EQ(r.total_ticks, g.sim_ticks)
      << g.kernel << ": simulator behaviour changed — re-baseline "
      << "consciously (EXPERIMENTS.md numbers depend on it)";
}

TEST_P(GoldenRegression, ModelCyclesPinned) {
  const auto& g = GetParam();
  const auto spec = kernels::make(g.kernel, kernels::Scale::kSmall);
  const auto lk =
      swacc::lower(spec.desc, spec.tuned, sw::ArchParams::sw26010());
  const auto p =
      model::PerfModel(sw::ArchParams::sw26010()).predict(lk.summary);
  EXPECT_NEAR(p.t_total, g.model_cycles, 0.05)
      << g.kernel << ": model output changed — re-baseline consciously";
}

TEST(GoldenRegression, CoversTheWholeRegistry) {
  // A kernel added to the registry must be baselined here too.
  EXPECT_EQ(std::size(kGolden), kernels::suite_names().size());
}

INSTANTIATE_TEST_SUITE_P(
    Suite, GoldenRegression, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<Golden>& info) {
      std::string name = info.param.kernel;
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace swperf
