// sw::LatencyHistogram: the fixed power-of-two bucket layout, the
// deterministic quantile contract (inclusive bucket upper bound; exact max
// from the overflow bucket), and merge.
#include <gtest/gtest.h>

#include <cstdint>

#include "sw/stats.h"

namespace swperf::sw {
namespace {

TEST(LatencyHistogram, BucketLayout) {
  // Bucket 0 is [0,1); bucket i >= 1 is [2^(i-1), 2^i).
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1023), 10u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 11u);
  // Everything past 2^26 us lands in the overflow bucket.
  EXPECT_EQ(LatencyHistogram::bucket_of(std::uint64_t{1} << 26),
            LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, BucketCeilIsInclusiveUpperBound) {
  EXPECT_EQ(LatencyHistogram::bucket_ceil(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_ceil(1), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_ceil(2), 4u);
  EXPECT_EQ(LatencyHistogram::bucket_ceil(10), 1024u);
  // The overflow bucket has no finite ceiling; quantile_us falls back to
  // the exact maximum there.
  EXPECT_EQ(LatencyHistogram::bucket_ceil(LatencyHistogram::kBuckets - 1),
            0u);
}

TEST(LatencyHistogram, EmptyQuantilesAreZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_us(), 0u);
  EXPECT_EQ(h.quantile_us(0.5), 0u);
  EXPECT_EQ(h.quantile_us(0.99), 0u);
}

TEST(LatencyHistogram, QuantilesNeverUnderestimate) {
  LatencyHistogram h;
  for (std::uint64_t us : {3u, 5u, 9u, 100u, 1000u}) h.record(us);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.max_us(), 1000u);
  // rank(0.5) = ceil(0.5*5) = 3 -> third sample (9) -> bucket [8,16) -> 16.
  EXPECT_EQ(h.quantile_us(0.5), 16u);
  // rank(1.0) = 5 -> 1000 -> bucket [512,1024) -> 1024.
  EXPECT_EQ(h.quantile_us(1.0), 1024u);
  // The reported bound is >= the true quantile and <= 2x above it.
  EXPECT_GE(h.quantile_us(0.5), 9u);
  EXPECT_LE(h.quantile_us(0.5), 18u);
}

TEST(LatencyHistogram, QuantileIsDeterministicUnderPermutation) {
  LatencyHistogram forward;
  LatencyHistogram backward;
  for (std::uint64_t us = 1; us <= 1000; ++us) forward.record(us);
  for (std::uint64_t us = 1000; us >= 1; --us) backward.record(us);
  for (double q : {0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(forward.quantile_us(q), backward.quantile_us(q)) << q;
  }
}

TEST(LatencyHistogram, OverflowBucketReportsExactMax) {
  LatencyHistogram h;
  h.record(1);
  h.record((std::uint64_t{1} << 26) + 12345);
  EXPECT_EQ(h.quantile_us(1.0), (std::uint64_t{1} << 26) + 12345);
}

TEST(LatencyHistogram, MergeIsCountPreserving) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (std::uint64_t us : {1u, 2u, 3u}) a.record(us);
  for (std::uint64_t us : {1000u, 2000u}) b.record(us);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.max_us(), 2000u);
  LatencyHistogram all;
  for (std::uint64_t us : {1u, 2u, 3u, 1000u, 2000u}) all.record(us);
  for (double q : {0.2, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(a.quantile_us(q), all.quantile_us(q)) << q;
  }
}

}  // namespace
}  // namespace swperf::sw
