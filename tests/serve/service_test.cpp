// The serve request core, driven in-process through the same ShardPool +
// OstreamSink path that `swperf serve --stdio` uses: envelope parsing,
// the exactly-one-reply-per-line contract (malformed lines included — the
// connection survives), id echoing, per-arch sharding, the stats request,
// and the deterministic queue-depth-1 overload behaviour (paused
// dispatchers, so backpressure is pinned without racing a consumer).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "serde/json.h"
#include "serve/service.h"
#include "serve/shard.h"
#include "sw/error.h"

namespace swperf::serve {
namespace {

std::vector<serde::Json> parse_lines(const std::string& text) {
  std::vector<serde::Json> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out.push_back(serde::Json::parse_or_throw(line));
  }
  return out;
}

/// Finds the reply whose "id" equals `id` (numeric); fails the test when
/// absent.  Replies are matched by id, never position: the dispatcher
/// answers asynchronously, so inline replies (stats, errors) can overtake
/// queued work.
const serde::Json& reply_for(const std::vector<serde::Json>& replies,
                             std::uint64_t id) {
  for (const auto& r : replies) {
    const serde::Json* rid = r.find("id");
    if (rid != nullptr && rid->is_number() && rid->as_u64() == id) return r;
  }
  static const serde::Json missing;
  EXPECT_TRUE(false) << "no reply with id " << id;
  return missing;
}

TEST(ServeService, ParseRequestSplitsEnvelope) {
  const auto v = serde::Json::parse_or_throw(
      R"({"id": 7, "kernel": "vecadd", "stages": ["model"]})");
  const Request req = parse_request(v);
  EXPECT_TRUE(req.has_id);
  EXPECT_EQ(req.id.as_u64(), 7u);
  EXPECT_FALSE(req.stats);
  // The entry keeps everything that is not envelope.
  EXPECT_TRUE(req.entry.contains("kernel"));
  EXPECT_TRUE(req.entry.contains("stages"));
  EXPECT_FALSE(req.entry.contains("id"));
  // No "arch" member: the default fingerprint.
  EXPECT_EQ(req.arch_key, arch_key(sw::ArchParams::sw26010()));
}

TEST(ServeService, ParseRequestRejectsBadStats) {
  const auto bad = serde::Json::parse_or_throw(R"({"stats": "yes"})");
  EXPECT_THROW(parse_request(bad), sw::Error);
  const auto mixed =
      serde::Json::parse_or_throw(R"({"stats": true, "kernel": "vecadd"})");
  EXPECT_THROW(parse_request(mixed), sw::Error);
}

TEST(ServeService, ArchKeyDistinguishesTenants) {
  const auto base = sw::ArchParams::sw26010();
  auto derated = base;
  derated.mem_bw_gbps = 24.0;
  EXPECT_EQ(arch_key(base), arch_key(base));
  EXPECT_NE(arch_key(base), arch_key(derated));
  const std::string digest = arch_key_digest(arch_key(base));
  EXPECT_EQ(digest.size(), 16u);
  EXPECT_EQ(digest, arch_key_digest(arch_key(base)));
  EXPECT_NE(digest, arch_key_digest(arch_key(derated)));
}

TEST(ServeService, RoundTripEchoesIdAndServesResult) {
  std::ostringstream out;
  auto sink = std::make_shared<OstreamSink>(out);
  {
    ShardPool pool(ServeOptions{});
    pool.handle_line(
        R"({"id": 1, "kernel": "vecadd", "scale": "small", "stages": ["model"]})",
        sink);
    pool.drain();
  }
  const auto replies = parse_lines(out.str());
  ASSERT_EQ(replies.size(), 1u);
  const serde::Json& r = reply_for(replies, 1);
  EXPECT_TRUE(r.at("ok").as_bool());
  EXPECT_EQ(r.at("kernel").as_string(), "vecadd");
  EXPECT_TRUE(r.contains("predicted"));
}

TEST(ServeService, MalformedLineGetsErrorAndConnectionSurvives) {
  std::ostringstream out;
  auto sink = std::make_shared<OstreamSink>(out);
  {
    ShardPool pool(ServeOptions{});
    pool.handle_line("this is not json", sink);
    pool.handle_line("[1, 2, 3]", sink);  // parses, but not an object
    pool.handle_line(
        R"({"id": 5, "kernel": "vecadd", "scale": "small", "stages": ["check"]})",
        sink);
    pool.drain();
  }
  const auto replies = parse_lines(out.str());
  ASSERT_EQ(replies.size(), 3u);
  int malformed = 0;
  for (const auto& r : replies) {
    const serde::Json* err = r.find("error");
    if (err != nullptr && err->at("code").as_string() == "malformed") {
      ++malformed;
      EXPECT_FALSE(r.at("ok").as_bool());
    }
  }
  EXPECT_EQ(malformed, 2);
  // The request after the malformed lines was still served.
  const serde::Json& ok = reply_for(replies, 5);
  EXPECT_TRUE(ok.at("ok").as_bool());
}

TEST(ServeService, InvalidEntryKeepsKernelNameAndId) {
  std::ostringstream out;
  auto sink = std::make_shared<OstreamSink>(out);
  {
    ShardPool pool(ServeOptions{});
    pool.handle_line(R"({"id": 9, "kernel": "no-such-kernel"})", sink);
    pool.drain();
  }
  const auto replies = parse_lines(out.str());
  ASSERT_EQ(replies.size(), 1u);
  const serde::Json& r = reply_for(replies, 9);
  EXPECT_FALSE(r.at("ok").as_bool());
  EXPECT_EQ(r.at("error").at("code").as_string(), "invalid");
}

TEST(ServeService, BlankLinesAreIgnored) {
  std::ostringstream out;
  auto sink = std::make_shared<OstreamSink>(out);
  {
    ShardPool pool(ServeOptions{});
    pool.handle_line("", sink);
    pool.handle_line("   \t", sink);
    pool.drain();
  }
  EXPECT_TRUE(out.str().empty());
}

TEST(ServeService, StatsRequestReportsShardsAndCounters) {
  std::ostringstream out;
  auto sink = std::make_shared<OstreamSink>(out);
  {
    ShardPool pool(ServeOptions{});
    pool.handle_line(
        R"({"id": 1, "kernel": "vecadd", "scale": "small", "stages": ["model"]})",
        sink);
    pool.drain();  // the request is answered before stats are sampled
    pool.handle_line(R"({"id": 2, "stats": true})", sink);
  }
  const auto replies = parse_lines(out.str());
  ASSERT_EQ(replies.size(), 2u);
  const serde::Json& s = reply_for(replies, 2);
  EXPECT_TRUE(s.at("ok").as_bool());
  const serde::Json& stats = s.at("stats");
  EXPECT_EQ(stats.at("server").at("requests").as_u64(), 2u);
  ASSERT_EQ(stats.at("shards").size(), 1u);
  const serde::Json& shard = stats.at("shards").items()[0];
  EXPECT_EQ(shard.at("served").as_u64(), 1u);
  EXPECT_EQ(shard.at("arch").as_string().size(), 16u);
  EXPECT_TRUE(shard.contains("session"));
  EXPECT_TRUE(shard.at("latency_us").contains("p99"));
  EXPECT_EQ(shard.at("latency_us").at("count").as_u64(), 1u);
}

TEST(ServeService, DistinctArchObjectsGetDistinctShards) {
  std::ostringstream out;
  auto sink = std::make_shared<OstreamSink>(out);
  ShardPool pool(ServeOptions{});
  const char* base =
      R"({"id": 1, "kernel": "vecadd", "scale": "small", "stages": ["model"]})";
  const char* derated =
      R"({"id": 2, "arch": {"mem_bw_gbps": 24}, "kernel": "vecadd", "scale": "small", "stages": ["model"]})";
  const char* derated_again =
      R"({"id": 3, "arch": {"mem_bw_gbps": 24}, "kernel": "vecadd", "scale": "small", "stages": ["model"]})";
  pool.handle_line(base, sink);
  pool.handle_line(derated, sink);
  pool.handle_line(derated_again, sink);
  pool.drain();
  EXPECT_EQ(pool.shard_count(), 2u);
  const auto replies = parse_lines(out.str());
  ASSERT_EQ(replies.size(), 3u);
  // The derated tenant must see different numbers than the default one.
  const double base_t =
      reply_for(replies, 1).at("predicted").at("t_total").as_double();
  const double derated_t =
      reply_for(replies, 2).at("predicted").at("t_total").as_double();
  EXPECT_NE(base_t, derated_t);
  EXPECT_EQ(derated_t,
            reply_for(replies, 3).at("predicted").at("t_total").as_double());
}

TEST(ServeService, QueueDepthOneOverloadIsDeterministic) {
  std::ostringstream out;
  auto sink = std::make_shared<OstreamSink>(out);
  ServeOptions opts;
  opts.queue_depth = 1;
  opts.batch = 1;
  opts.auto_start = false;  // paused dispatcher: enqueue order is pinned
  ShardPool pool(opts);
  const char* line =
      R"({"id": %d, "kernel": "vecadd", "scale": "small", "stages": ["model"]})";
  for (int id = 1; id <= 3; ++id) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), line, id);
    pool.handle_line(buf, sink);
  }
  // With the dispatcher paused, request 1 occupies the queue and 2, 3 are
  // answered "overloaded" immediately.
  {
    const auto replies = parse_lines(out.str());
    ASSERT_EQ(replies.size(), 2u);
    for (std::uint64_t id : {2u, 3u}) {
      const serde::Json& r = reply_for(replies, id);
      EXPECT_FALSE(r.at("ok").as_bool());
      EXPECT_EQ(r.at("error").at("code").as_string(), "overloaded");
    }
  }
  pool.start_shards();
  pool.drain();
  // Every request got exactly one reply: the queued one a result, the
  // shed ones the structured overload error.  Zero dropped.
  const auto replies = parse_lines(out.str());
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_TRUE(reply_for(replies, 1).at("ok").as_bool());
}

TEST(ServeService, DrainedShardStillAnswersAccepted) {
  // A never-started pool (auto_start=false) must still answer everything
  // it accepted when drained — the graceful-drain contract.
  std::ostringstream out;
  auto sink = std::make_shared<OstreamSink>(out);
  ServeOptions opts;
  opts.auto_start = false;
  ShardPool pool(opts);
  pool.handle_line(
      R"({"id": 1, "kernel": "vecadd", "scale": "small", "stages": ["model"]})",
      sink);
  pool.drain();
  const auto replies = parse_lines(out.str());
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(reply_for(replies, 1).at("ok").as_bool());
}

TEST(ServeService, RepeatedRequestsHitTheSessionCache) {
  std::ostringstream out;
  auto sink = std::make_shared<OstreamSink>(out);
  // batch=1 serializes the four identical requests, so 2..4 must hit the
  // memo (a wider batch may fan them out concurrently, where
  // first-insert-wins legitimately records several misses).
  ServeOptions opts;
  opts.batch = 1;
  ShardPool pool(opts);
  const char* line =
      R"({"id": %d, "kernel": "kmeans", "scale": "small", "stages": ["sim"]})";
  for (int id = 1; id <= 4; ++id) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), line, id);
    pool.handle_line(buf, sink);
  }
  pool.drain();
  pool.handle_line(R"({"id": 99, "stats": true})", sink);
  const auto replies = parse_lines(out.str());
  ASSERT_EQ(replies.size(), 5u);
  const serde::Json& session =
      reply_for(replies, 99).at("stats").at("shards").items()[0].at(
          "session");
  EXPECT_GE(session.at("hits").as_u64(), 3u);
  // All four sim replies are byte-identical modulo the id.
  const std::string first =
      reply_for(replies, 1).at("actual").dump();
  for (std::uint64_t id : {2u, 3u, 4u}) {
    EXPECT_EQ(reply_for(replies, id).at("actual").dump(), first);
  }
}

}  // namespace
}  // namespace swperf::serve
