// The TCP transport end to end: a serve::Server on an ephemeral loopback
// port, driven through real sockets — request/reply round-trip, malformed
// lines surviving on a live connection, concurrent connections, an early
// client disconnect, and the graceful drain returning 0 with every
// accepted request answered.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serde/json.h"
#include "serve/server.h"
#include "serve/shard.h"

namespace swperf::serve {
namespace {

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

void send_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n =
        ::send(fd, text.data() + off, text.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

std::vector<serde::Json> read_replies(int fd, std::size_t expected) {
  std::vector<serde::Json> replies;
  std::string pending;
  char buf[4096];
  while (replies.size() < expected) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = pending.find('\n', start);
      if (nl == std::string::npos) break;
      replies.push_back(
          serde::Json::parse_or_throw(pending.substr(start, nl - start)));
      start = nl + 1;
    }
    pending.erase(0, start);
  }
  return replies;
}

const serde::Json& reply_for(const std::vector<serde::Json>& replies,
                             std::uint64_t id) {
  for (const auto& r : replies) {
    const serde::Json* rid = r.find("id");
    if (rid != nullptr && rid->is_number() && rid->as_u64() == id) return r;
  }
  static const serde::Json missing;
  EXPECT_TRUE(false) << "no reply with id " << id;
  return missing;
}

struct RunningServer {
  // Always an ephemeral port: gtest shards run in parallel under
  // `ctest -j`, and two harnesses racing for the default port would
  // make listen_on() flaky.
  static ServeOptions ephemeral(ServeOptions opts = ServeOptions{}) {
    opts.port = 0;
    return opts;
  }
  explicit RunningServer(ServeOptions opts = ServeOptions{})
      : server(ephemeral(opts)) {
    std::string error;
    EXPECT_TRUE(server.listen_on(&error)) << error;
    runner = std::thread([this] { rc = server.run(); });
  }
  int stop() {
    server.request_stop();
    if (runner.joinable()) runner.join();
    return rc;
  }
  ~RunningServer() { stop(); }

  Server server;
  std::thread runner;
  int rc = -1;
};

TEST(ServeServer, RoundTripAndMalformedSurvivalOverTcp) {
  RunningServer s;
  const int fd = connect_loopback(s.server.port());
  send_all(fd,
           "{\"id\": 1, \"kernel\": \"vecadd\", \"scale\": \"small\", "
           "\"stages\": [\"model\"]}\n"
           "garbage line\n"
           "{\"id\": 2, \"kernel\": \"vecadd\", \"scale\": \"small\", "
           "\"stages\": [\"check\"]}\n");
  const auto replies = read_replies(fd, 3);
  ::close(fd);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_TRUE(reply_for(replies, 1).at("ok").as_bool());
  EXPECT_TRUE(reply_for(replies, 2).at("ok").as_bool());
  int malformed = 0;
  for (const auto& r : replies) {
    const serde::Json* err = r.find("error");
    if (err != nullptr && err->at("code").as_string() == "malformed") {
      ++malformed;
    }
  }
  EXPECT_EQ(malformed, 1);
  EXPECT_EQ(s.stop(), 0);
}

TEST(ServeServer, ConcurrentConnectionsShareTheShard) {
  RunningServer s;
  constexpr int kClients = 4;
  std::vector<std::string> sims(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_loopback(s.server.port());
      send_all(fd, "{\"id\": 1, \"kernel\": \"kmeans\", \"scale\": "
                   "\"small\", \"stages\": [\"sim\"]}\n");
      const auto replies = read_replies(fd, 1);
      ::close(fd);
      if (replies.size() == 1 && replies[0].at("ok").as_bool()) {
        sims[static_cast<std::size_t>(c)] =
            replies[0].at("actual").dump();
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    ASSERT_FALSE(sims[static_cast<std::size_t>(c)].empty()) << c;
    // One shared Session shard: every client sees bit-identical results.
    EXPECT_EQ(sims[static_cast<std::size_t>(c)], sims[0]);
  }
  EXPECT_EQ(s.stop(), 0);
}

TEST(ServeServer, EarlyDisconnectDoesNotPoisonTheServer) {
  RunningServer s;
  {
    // Fire a request and vanish without reading the reply.
    const int fd = connect_loopback(s.server.port());
    send_all(fd, "{\"id\": 1, \"kernel\": \"vecadd\", \"scale\": "
                 "\"small\", \"stages\": [\"sim\"]}\n");
    ::close(fd);
  }
  // The server must keep serving other clients.
  const int fd = connect_loopback(s.server.port());
  send_all(fd, "{\"id\": 2, \"kernel\": \"vecadd\", \"scale\": \"small\", "
               "\"stages\": [\"check\"]}\n");
  const auto replies = read_replies(fd, 1);
  ::close(fd);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(reply_for(replies, 2).at("ok").as_bool());
  EXPECT_EQ(s.stop(), 0);
}

TEST(ServeServer, GracefulDrainAnswersInFlightRequests) {
  RunningServer s;
  const int fd = connect_loopback(s.server.port());
  // First a complete round-trip, so the connection's reader is known to
  // be attached (accept() has happened) before the in-flight experiment.
  send_all(fd, "{\"id\": 1, \"kernel\": \"lud\", \"scale\": \"small\", "
               "\"stages\": [\"check\"]}\n");
  ASSERT_EQ(read_replies(fd, 1).size(), 1u);
  // Loopback send places the line in the server's receive buffer before
  // returning; the drain (shutdown + reader join + pool drain) must still
  // answer it before run() returns.
  send_all(fd, "{\"id\": 2, \"kernel\": \"lud\", \"scale\": \"small\", "
               "\"stages\": [\"sim\"]}\n");
  s.server.request_stop();
  const auto replies = read_replies(fd, 1);
  ::close(fd);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(reply_for(replies, 2).at("ok").as_bool());
  EXPECT_EQ(s.stop(), 0);
}

TEST(ServeServer, PortZeroPicksAnEphemeralPort) {
  ServeOptions opts;
  opts.port = 0;
  RunningServer s(opts);
  EXPECT_GT(s.server.port(), 0);
  EXPECT_LE(s.server.port(), 65535);
  EXPECT_EQ(s.stop(), 0);
}

}  // namespace
}  // namespace swperf::serve
