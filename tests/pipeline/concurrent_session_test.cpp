// The Session re-entrancy contract the serve shard pool fans out on:
// eight threads hammering ONE Session with a mixed check / predict /
// simulate workload over the paper suite produce results bit-identical
// to a serial Session, and the memo tables end up with exactly one entry
// per distinct launch (first insert wins; no duplicate keys, no torn
// artifacts).  Runs under the `concurrency` label so the tsan preset
// audits the probe-under-lock / compute-outside-lock protocol.
#include "pipeline/session.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "kernels/suite.h"
#include "serde/serde.h"

namespace swperf::pipeline {
namespace {

struct WorkItem {
  kernels::KernelSpec spec;
  enum class Op { kCheck, kPredict, kSimulate } op;
};

std::vector<WorkItem> mixed_workload() {
  std::vector<WorkItem> items;
  for (const char* name : {"vecadd", "kmeans", "lud", "hotspot", "backprop"}) {
    const auto spec = kernels::make(name, kernels::Scale::kSmall);
    items.push_back({spec, WorkItem::Op::kCheck});
    items.push_back({spec, WorkItem::Op::kPredict});
    items.push_back({spec, WorkItem::Op::kSimulate});
  }
  return items;
}

std::string run_item(Session& s, const WorkItem& item) {
  switch (item.op) {
    case WorkItem::Op::kCheck:
      return serde::to_json(s.check(item.spec.desc, item.spec.tuned)).dump();
    case WorkItem::Op::kPredict:
      return serde::to_json(s.predict(item.spec.desc, item.spec.tuned))
          .dump();
    case WorkItem::Op::kSimulate:
      return serde::to_json(s.simulate(item.spec.desc, item.spec.tuned))
          .dump();
  }
  return {};
}

TEST(ConcurrentSession, EightThreadsMatchSerialBitForBit) {
  const auto items = mixed_workload();

  // Serial baseline: a fresh Session, every item once, in order.
  Session serial;
  std::vector<std::string> expected;
  expected.reserve(items.size());
  for (const auto& item : items) expected.push_back(run_item(serial, item));

  // Concurrent run: one shared Session, eight threads, three rounds each,
  // every thread starting at a different offset so first-seen compute
  // races actually happen on the shared memo tables.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 3;
  Session shared;
  std::vector<std::vector<std::string>> got(
      kThreads, std::vector<std::string>(items.size()));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < items.size(); ++i) {
          const std::size_t at = (i + t) % items.size();
          got[t][at] = run_item(shared, items[at]);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(got[t][i], expected[i]) << "thread " << t << " item " << i;
    }
  }

  // First insert wins: the shared tables hold exactly the serial entry
  // counts — one lowering and one simulation per distinct launch.
  EXPECT_EQ(shared.lowered_cached(), serial.lowered_cached());
  EXPECT_EQ(shared.simulated_cached(), serial.simulated_cached());

  // The counters saw every probe: 8 threads x 3 rounds x the memoized ops
  // (predict probes lower; simulate probes lower + sim; check is
  // stateless), minus nothing — probes() must dominate the serial count
  // and hits must dominate misses after warmup.
  const auto stats = shared.stats();
  EXPECT_GT(stats.probes(), serial.stats().probes());
  EXPECT_GT(stats.hits, stats.misses);
}

}  // namespace
}  // namespace swperf::pipeline
