// pipeline::Session: the facade must be a pure refactor of the hand-rolled
// desc -> lower -> {check, sim, model, tune} chains it replaced (identical
// artifacts), plus the memoization and degenerate-input guarantees it adds.
#include "pipeline/session.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "kernels/suite.h"
#include "model/model.h"
#include "serde/serde.h"
#include "sim/machine.h"
#include "swacc/lower.h"
#include "tuning/tuner.h"

namespace swperf::pipeline {
namespace {

kernels::KernelSpec small(const char* name) {
  return kernels::make(name, kernels::Scale::kSmall);
}

TEST(RelativeError, MatchesDefinitionAndGuardsZeroActual) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90.0, 100.0), -0.1);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(relative_error(5.0, 0.0)));
  EXPECT_GT(relative_error(5.0, 0.0), 0.0);
}

TEST(Session, LoweringIsMemoizedByContent) {
  const auto spec = small("vecadd");
  Session s;
  const auto& a = s.lower(spec.desc, spec.tuned);
  const auto& b = s.lower(spec.desc, spec.tuned);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(s.lowered_cached(), 1u);
  // A structurally equal copy hits the same entry (content key, not
  // object identity).
  const auto copy = spec.desc;
  EXPECT_EQ(&s.lower(copy, spec.tuned), &a);
  EXPECT_EQ(s.lowered_cached(), 1u);
  // Different params are a different entry.
  auto other = spec.tuned;
  other.unroll = spec.tuned.unroll == 1 ? 2 : 1;
  s.lower(spec.desc, other);
  EXPECT_EQ(s.lowered_cached(), 2u);
}

TEST(Session, SimulationIsMemoized) {
  const auto spec = small("vecadd");
  Session s;
  const auto& a = s.simulate(spec.desc, spec.tuned);
  const auto& b = s.simulate(spec.desc, spec.tuned);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(s.simulated_cached(), 1u);
}

TEST(Session, MatchesHandRolledChain) {
  const auto spec = small("kmeans");
  const auto arch = sw::ArchParams::sw26010();
  Session s(arch);
  const auto e = s.evaluate(spec.desc, spec.tuned);

  const auto lk = swacc::lower(spec.desc, spec.tuned, arch);
  const auto r = sim::simulate(lk.sim_config, lk.binary, lk.programs);
  const auto pred = model::PerfModel(arch).predict(lk.summary);

  EXPECT_EQ(serde::to_json(e.lowered.summary).dump(),
            serde::to_json(lk.summary).dump());
  EXPECT_EQ(e.actual.total_ticks, r.total_ticks);
  EXPECT_EQ(serde::to_json(e.predicted).dump(),
            serde::to_json(pred).dump());
  EXPECT_DOUBLE_EQ(e.error(),
                   (pred.t_total - r.total_cycles()) / r.total_cycles());
}

TEST(Session, CheckMatchesCheckAll) {
  const auto spec = small("vecadd");
  Session s;
  auto bad = spec.tuned;
  bad.tile = 4;  // below dma_min_tile: SWD004 territory
  const auto via_session = s.check(spec.desc, bad);
  const auto direct = analysis::check_all(spec.desc, bad, s.arch());
  EXPECT_EQ(serde::to_json(via_session).dump(),
            serde::to_json(direct).dump());
  EXPECT_FALSE(via_session.empty());
}

TEST(Session, SimulateTracedRecordsTraceWithoutMemoizing) {
  const auto spec = small("vecadd");
  Session s;
  const auto traced = s.simulate_traced(spec.desc, spec.tuned);
  EXPECT_FALSE(traced.trace.empty());
  EXPECT_EQ(s.simulated_cached(), 0u);   // traces are one-shot
  EXPECT_EQ(s.lowered_cached(), 1u);     // but the lowering is shared
  // The memoized (trace-free) run agrees on timing.
  EXPECT_EQ(s.simulate(spec.desc, spec.tuned).total_ticks,
            traced.total_ticks);
  EXPECT_TRUE(s.simulate(spec.desc, spec.tuned).trace.empty());
}

TEST(Session, TuneMatchesDirectTuner) {
  const auto spec = small("vecadd");
  Session s;
  const auto space = tuning::SearchSpace::standard(spec.desc, s.arch());
  const auto via_session = s.tune(spec.desc, space);
  const auto direct = tuning::StaticTuner(s.arch()).tune(spec.desc, space);
  EXPECT_EQ(serde::to_json(via_session.best).dump(),
            serde::to_json(direct.best).dump());
  EXPECT_EQ(via_session.variants, direct.variants);
  EXPECT_DOUBLE_EQ(via_session.best_measured_cycles,
                   direct.best_measured_cycles);
}

TEST(Session, ModelOptionsReachTheModel) {
  const auto spec = small("vecadd");
  model::ModelOptions no_overlap;
  no_overlap.overlap = false;
  Session with(sw::ArchParams::sw26010(), {});
  Session without(sw::ArchParams::sw26010(), no_overlap);
  const auto p0 = with.predict(spec.desc, spec.tuned);
  const auto p1 = without.predict(spec.desc, spec.tuned);
  EXPECT_DOUBLE_EQ(p1.t_overlap, 0.0);
  EXPECT_GE(p1.t_total, p0.t_total);
}

TEST(Evaluation, JsonRecordIsCompleteAndFiniteErrorsOnly) {
  const auto spec = small("vecadd");
  Session s;
  const auto e = s.evaluate(spec.desc, spec.tuned);
  const auto j = to_json(e);
  for (const char* key :
       {"kernel", "params", "summary", "actual", "predicted", "error"}) {
    EXPECT_TRUE(j.contains(key)) << key;
  }
  EXPECT_EQ(j.at("kernel").as_string(), spec.desc.name);
  // The record re-parses and re-dumps identically (serde contract).
  const std::string once = j.dump();
  EXPECT_EQ(serde::Json::parse_or_throw(once).dump(), once);
}

TEST(Evaluation, InfiniteErrorSerializesAsNull) {
  Evaluation e;  // zero-cycle actual, zero prediction
  EXPECT_DOUBLE_EQ(e.error(), 0.0);
  e.predicted.t_total = 5.0;
  EXPECT_TRUE(std::isinf(e.error()));
  EXPECT_TRUE(to_json(e).at("error").is_null());
}

}  // namespace
}  // namespace swperf::pipeline
