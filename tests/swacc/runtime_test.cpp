#include "swacc/runtime.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "kernels/kmeans.h"
#include "kernels/vecadd.h"
#include "sw/error.h"
#include "sw/rng.h"

namespace swperf::swacc {
namespace {

const sw::ArchParams kArch;

TEST(Runtime, VecaddThroughSpmMatchesHostReference) {
  const std::uint64_t n = 4096;
  auto spec = kernels::vecadd_n(n);
  // Element type is double (8 B per outer element per array).
  sw::Rng rng(1);
  std::vector<double> a(n), b(n), c(n, -1.0), expect(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    a[i] = rng.uniform(-1, 1);
    b[i] = rng.uniform(-1, 1);
  }
  kernels::host::vecadd(a, b, expect);

  for (const std::uint64_t tile : {1u, 7u, 64u, 512u}) {
    std::fill(c.begin(), c.end(), -1.0);
    LaunchParams lp;
    lp.tile = tile;
    Runtime rt(spec.desc, lp, kArch);
    ArrayBindings bind;
    bind.bind_const<const double>("A", a);
    bind.bind_const<const double>("B", b);
    bind.bind<double>("C", c);
    rt.run(bind, [](ChunkContext& ctx) {
      const auto va = ctx.spm<double>("A");
      const auto vb = ctx.spm<double>("B");
      auto vc = ctx.spm<double>("C");
      ASSERT_EQ(va.size(), ctx.size());
      for (std::size_t i = 0; i < va.size(); ++i) vc[i] = va[i] + vb[i];
    });
    EXPECT_EQ(c, expect) << "tile=" << tile;
  }
}

TEST(Runtime, KmeansAssignmentMatchesHostReference) {
  // The full semantic check: the tiled, SPM-staged assignment step must
  // reproduce the host algorithm bit-exactly, for awkward tile sizes too.
  kernels::KmeansConfig cfg;
  cfg.n_points = 1000;  // not a multiple of 64 or of any tile
  cfg.n_features = 8;
  cfg.n_clusters = 4;

  sw::Rng rng(2);
  std::vector<float> points(cfg.n_points * cfg.n_features);
  for (auto& p : points) p = static_cast<float>(rng.uniform(0, 10));
  std::vector<float> centroids(cfg.n_clusters * cfg.n_features);
  for (auto& p : centroids) p = static_cast<float>(rng.uniform(0, 10));

  // Host reference (double-precision path, same float inputs).
  std::vector<std::uint32_t> expect(cfg.n_points);
  for (std::uint64_t i = 0; i < cfg.n_points; ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::uint32_t best_c = 0;
    for (std::uint32_t c = 0; c < cfg.n_clusters; ++c) {
      double d2 = 0;
      for (std::uint32_t f = 0; f < cfg.n_features; ++f) {
        const double d =
            static_cast<double>(points[i * cfg.n_features + f]) -
            static_cast<double>(centroids[c * cfg.n_features + f]);
        d2 += d * d;
      }
      if (d2 < best) {
        best = d2;
        best_c = c;
      }
    }
    expect[i] = best_c;
  }

  auto spec = kernels::kmeans_cfg(cfg);
  for (const std::uint64_t tile : {1u, 16u, 37u, 250u}) {
    std::vector<std::uint32_t> membership(cfg.n_points, 999);
    LaunchParams lp;
    lp.tile = tile;
    Runtime rt(spec.desc, lp, kArch);
    ArrayBindings bind;
    bind.bind_const<const float>("points", points);
    bind.bind<std::uint32_t>("membership", membership);
    bind.bind_const<const float>("centroids", centroids);

    const std::uint32_t dim = cfg.n_features;
    const std::uint32_t k = cfg.n_clusters;
    rt.run(bind, [&](ChunkContext& ctx) {
      const auto pts = ctx.spm<float>("points");
      auto out = ctx.spm<std::uint32_t>("membership");
      const auto cents = ctx.broadcast<float>("centroids");
      for (std::uint64_t i = 0; i < ctx.size(); ++i) {
        double best = std::numeric_limits<double>::infinity();
        std::uint32_t best_c = 0;
        for (std::uint32_t c = 0; c < k; ++c) {
          double d2 = 0;
          for (std::uint32_t f = 0; f < dim; ++f) {
            const double d = static_cast<double>(pts[i * dim + f]) -
                             static_cast<double>(cents[c * dim + f]);
            d2 += d * d;
          }
          if (d2 < best) {
            best = d2;
            best_c = c;
          }
        }
        out[i] = best_c;
      }
    });
    EXPECT_EQ(membership, expect) << "tile=" << tile;
  }
}

TEST(Runtime, ChunkContextReportsGeometry) {
  auto spec = kernels::vecadd_n(100);
  LaunchParams lp;
  lp.tile = 30;
  lp.requested_cpes = 2;
  Runtime rt(spec.desc, lp, kArch);
  std::vector<double> a(100), b(100), c(100);
  ArrayBindings bind;
  bind.bind_const<const double>("A", a);
  bind.bind_const<const double>("B", b);
  bind.bind<double>("C", c);
  std::vector<std::tuple<std::uint32_t, std::uint64_t, std::uint64_t>> seen;
  rt.run(bind, [&](ChunkContext& ctx) {
    seen.emplace_back(ctx.cpe(), ctx.begin(), ctx.size());
  });
  // 4 chunks over 2 CPEs, round-robin; tail chunk is 10 elements.
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], std::make_tuple(0u, std::uint64_t{0}, std::uint64_t{30}));
  EXPECT_EQ(seen[1],
            std::make_tuple(0u, std::uint64_t{60}, std::uint64_t{30}));
  EXPECT_EQ(seen[2],
            std::make_tuple(1u, std::uint64_t{30}, std::uint64_t{30}));
  EXPECT_EQ(seen[3],
            std::make_tuple(1u, std::uint64_t{90}, std::uint64_t{10}));
}

TEST(Runtime, ByteAccountingMatchesRequestedTraffic) {
  auto spec = kernels::vecadd_n(1024);
  LaunchParams lp;
  lp.tile = 64;
  Runtime rt(spec.desc, lp, kArch);
  std::vector<double> a(1024), b(1024), c(1024);
  ArrayBindings bind;
  bind.bind_const<const double>("A", a);
  bind.bind_const<const double>("B", b);
  bind.bind<double>("C", c);
  rt.run(bind, [](ChunkContext&) {});
  EXPECT_EQ(rt.bytes_staged_in(), 2u * 1024u * 8u);   // A and B
  EXPECT_EQ(rt.bytes_staged_out(), 1024u * 8u);       // C
}

TEST(Runtime, MissingOrMissizedBindingsThrow) {
  auto spec = kernels::vecadd_n(64);
  LaunchParams lp;
  Runtime rt(spec.desc, lp, kArch);
  std::vector<double> a(64), b(64), c(64), small(10);
  ArrayBindings bind;
  bind.bind_const<const double>("A", a);
  bind.bind_const<const double>("B", b);
  // C missing.
  EXPECT_THROW(rt.run(bind, [](ChunkContext&) {}), sw::Error);
  bind.bind<double>("C", small);  // wrong size
  EXPECT_THROW(rt.run(bind, [](ChunkContext&) {}), sw::Error);
  // Output arrays need a writable binding.
  ArrayBindings ro;
  ro.bind_const<const double>("A", a);
  ro.bind_const<const double>("B", b);
  ro.bind_const<const double>("C", c);
  EXPECT_THROW(rt.run(ro, [](ChunkContext&) {}), sw::Error);
}

TEST(Runtime, IndirectArraysExposedAsGlobalMemory) {
  // A gather kernel: out[i] = table[idx[i]].
  isa::BlockBuilder body("gather");
  const auto t = body.spm_load();
  body.spm_store(body.fixed(t));
  KernelDesc k;
  k.name = "gather";
  k.n_outer = 256;
  k.body = std::move(body).build();
  k.arrays = {
      {"idx", Dir::kIn, Access::kContiguous, 4},
      {"out", Dir::kOut, Access::kContiguous, 8},
      {.name = "table",
       .dir = Dir::kIn,
       .access = Access::kIndirect,
       .gloads_per_inner = 1.0,
       .gload_bytes = 8},
  };

  sw::Rng rng(3);
  std::vector<std::uint32_t> idx(256);
  std::vector<double> table(1000), out(256);
  for (auto& x : idx) x = static_cast<std::uint32_t>(rng.next_below(1000));
  for (std::size_t i = 0; i < table.size(); ++i) {
    table[i] = static_cast<double>(i) * 0.5;
  }

  LaunchParams lp;
  lp.tile = 16;
  Runtime rt(k, lp, kArch);
  ArrayBindings bind;
  bind.bind_const<const std::uint32_t>("idx", idx);
  bind.bind<double>("out", out);
  bind.bind_const<const double>("table", table);
  rt.run(bind, [](ChunkContext& ctx) {
    const auto vi = ctx.spm<std::uint32_t>("idx");
    auto vo = ctx.spm<double>("out");
    const auto vt = ctx.global<double>("table");
    for (std::size_t i = 0; i < ctx.size(); ++i) vo[i] = vt[vi[i]];
  });
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_DOUBLE_EQ(out[i], table[idx[i]]);
  }
}

TEST(Runtime, SpmOverflowRejectedAtConstruction) {
  auto spec = kernels::vecadd_n(1 << 20);
  LaunchParams lp;
  lp.tile = 1 << 18;  // 3 arrays x 2 MiB >> 64 KiB
  EXPECT_THROW(Runtime(spec.desc, lp, kArch), sw::Error);
}

}  // namespace
}  // namespace swperf::swacc
