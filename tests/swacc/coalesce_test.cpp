// Gload coalescing lowering option.
#include <gtest/gtest.h>

#include "kernels/suite.h"
#include "kernels/wrf.h"
#include "model/model.h"
#include "sim/machine.h"
#include "swacc/lower.h"

namespace swperf::swacc {
namespace {

const sw::ArchParams kArch;

TEST(Coalesce, ReducesGloadCountByPackFactorOnCoalesceableFraction) {
  const auto spec = kernels::make("bfs", kernels::Scale::kSmall);
  auto plain = spec.tuned;
  auto coal = spec.tuned;
  coal.coalesce_gloads = true;
  const auto lp = lower(spec.desc, plain, kArch);
  const auto lc = lower(spec.desc, coal, kArch);
  // f = 0.6 coalesceable, 8-byte loads pack 4x:
  // expected ratio = (1 - f) + f/4 = 0.55.
  const double ratio = static_cast<double>(lc.summary.n_gloads) /
                       static_cast<double>(lp.summary.n_gloads);
  EXPECT_NEAR(ratio, 0.55, 0.02);
}

TEST(Coalesce, PointerChasingBarelyBenefits) {
  const auto spec = kernels::make("b+tree", kernels::Scale::kSmall);
  auto coal = spec.tuned;
  coal.coalesce_gloads = true;
  const auto lp = lower(spec.desc, spec.tuned, kArch);
  const auto lc = lower(spec.desc, coal, kArch);
  // gload_coalesceable = 0.05 and 16-byte loads pack only 2x.
  EXPECT_GT(lc.summary.n_gloads,
            static_cast<std::uint64_t>(0.95 * lp.summary.n_gloads));
}

TEST(Coalesce, SimAndModelBothSeeTheSpeedup) {
  const auto spec = kernels::make("bfs", kernels::Scale::kSmall);
  auto coal = spec.tuned;
  coal.coalesce_gloads = true;
  const auto lp = lower(spec.desc, spec.tuned, kArch);
  const auto lc = lower(spec.desc, coal, kArch);
  const auto rp = sim::simulate(lp.sim_config, lp.binary, lp.programs);
  const auto rc = sim::simulate(lc.sim_config, lc.binary, lc.programs);
  EXPECT_LT(rc.total_cycles(), rp.total_cycles() * 0.75);
  const model::PerfModel pm(kArch);
  EXPECT_LT(pm.predict(lc.summary).t_total,
            pm.predict(lp.summary).t_total * 0.75);
}

TEST(Coalesce, NoopOnGloadFreeKernels) {
  const auto spec = kernels::make("vecadd", kernels::Scale::kSmall);
  auto coal = spec.tuned;
  coal.coalesce_gloads = true;
  const auto lp = lower(spec.desc, spec.tuned, kArch);
  const auto lc = lower(spec.desc, coal, kArch);
  EXPECT_EQ(lp.summary.n_gloads, lc.summary.n_gloads);
  EXPECT_EQ(lp.summary.n_dma_reqs(), lc.summary.n_dma_reqs());
}

TEST(WrfFactory, SpmFeasibleAcrossTheWholeCpeSweep) {
  // The dynamics factory re-blocks wide slices to fit SPM at any count.
  for (std::uint32_t cpes = 1; cpes <= 256; cpes = cpes * 2) {
    const auto spec = kernels::wrf_dynamics(cpes);
    EXPECT_NO_THROW(lower(spec.desc, spec.tuned, kArch)) << cpes;
  }
  for (const std::uint32_t cpes : {3u, 7u, 23u, 48u, 96u, 130u}) {
    const auto spec = kernels::wrf_dynamics(cpes);
    EXPECT_NO_THROW(lower(spec.desc, spec.tuned, kArch)) << cpes;
  }
}

TEST(VectorDoubleBuffer, ComposeCleanly) {
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);
  LaunchParams p;
  p.tile = 32;
  p.unroll = 2;
  p.vector_width = 4;
  p.double_buffer = true;
  const auto lk = lower(spec.desc, p, kArch);
  const auto r = sim::simulate(lk.sim_config, lk.binary, lk.programs);
  EXPECT_GT(r.total_ticks, 0u);
  // Still predicted sanely when everything is stacked.
  const auto pred = model::PerfModel(kArch).predict(lk.summary);
  EXPECT_NEAR(pred.t_total / r.total_cycles(), 1.0, 0.2);
}

}  // namespace
}  // namespace swperf::swacc
