// The incremental-lowering contract (swacc/skeleton.h): lower(k, p, a) is
// bit-identical to lower_with_skeleton(k, p, a, build_skeleton(k, p, a)),
// and a skeleton built for one variant lowers *any* variant that agrees on
// (unroll, vector_width) — the structure-sharing the branch-and-bound
// tuner's skeleton cache level depends on.
//
// Runs under the `concurrency` ctest label so the tsan preset covers the
// EvalCache skeleton shard under real worker threads.
#include "swacc/skeleton.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "kernels/suite.h"
#include "sim/machine.h"
#include "sw/error.h"
#include "sw/pool.h"
#include "swacc/validate.h"
#include "tuning/eval_cache.h"
#include "tuning/space.h"

namespace swperf::swacc {
namespace {

const sw::ArchParams kArch;

// Field-for-field identity of two lowered kernels, including the cycles
// the deterministic simulator produces from each.
void expect_identical(const LoweredKernel& a, const LoweredKernel& b,
                      const std::string& what) {
  // encode_summary covers every StaticSummary field byte-by-byte.
  EXPECT_EQ(tuning::encode_summary(a.summary), tuning::encode_summary(b.summary))
      << what;
  EXPECT_EQ(a.spm_bytes_used, b.spm_bytes_used) << what;
  ASSERT_EQ(a.programs.size(), b.programs.size()) << what;
  ASSERT_EQ(a.binary.blocks.size(), b.binary.blocks.size()) << what;
  const auto ra = sim::simulate(a.sim_config, a.binary, a.programs);
  const auto rb = sim::simulate(b.sim_config, b.binary, b.programs);
  EXPECT_EQ(ra.total_cycles(), rb.total_cycles()) << what;
}

class SkeletonRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(SkeletonRoundTrip, LowerWithOwnSkeletonIsPlainLower) {
  const auto spec = kernels::make(GetParam(), kernels::Scale::kSmall);
  const auto space =
      tuning::SearchSpace::with_vectorization(spec.desc, kArch);
  for (const auto& p : space.enumerate(spec.desc, kArch)) {
    const auto direct = lower(spec.desc, p, kArch);
    const auto skel = build_skeleton(spec.desc, p, kArch);
    const auto via = lower_with_skeleton(spec.desc, p, kArch, skel);
    expect_identical(direct, via, GetParam() + " " + p.to_string());
  }
}

INSTANTIATE_TEST_SUITE_P(Table2, SkeletonRoundTrip,
                         ::testing::ValuesIn(kernels::table2_kernels()));

TEST(Skeleton, SharedAcrossTileCpeBufferingAndCoalescing) {
  // One skeleton per (unroll, vector_width); every variant differing only
  // in the tile-dependent knobs must lower through it bit-identically.
  // Build each skeleton from the *first* variant of its codegen class in
  // enumeration order, then lower every sibling through it — exactly the
  // reuse pattern the tuner's skeleton cache level performs.
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);
  const auto all = tuning::SearchSpace::standard(spec.desc, kArch)
                       .enumerate(spec.desc, kArch);
  ASSERT_FALSE(all.empty());

  std::map<std::pair<std::uint32_t, std::uint32_t>, LoweredSkeleton> skels;
  std::size_t reused = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    auto p = all[i];
    // Perturb the tile-independent knobs too, so the sharing claim is
    // exercised beyond what the space itself varies (skipping any
    // perturbation the double-buffer SPM doubling makes illegal).
    p.double_buffer = (i % 2) == 0;
    p.coalesce_gloads = (i % 3) == 0;
    if (!validate_launch(spec.desc, p, kArch).ok) continue;
    const auto cls = std::make_pair(p.unroll, p.vector_width);
    auto it = skels.find(cls);
    if (it == skels.end()) {
      it = skels.emplace(cls, build_skeleton(spec.desc, p, kArch)).first;
    } else {
      ++reused;
    }
    expect_identical(lower(spec.desc, p, kArch),
                     lower_with_skeleton(spec.desc, p, kArch, it->second),
                     p.to_string());
  }
  // The space sweeps more tiles than unrolls, so sharing must have fired.
  EXPECT_GT(reused, 0u);
  EXPECT_LT(skels.size(), all.size());
}

TEST(Skeleton, RejectsCodegenParameterMismatch) {
  const auto spec = kernels::make("lud", kernels::Scale::kSmall);
  const auto all = tuning::SearchSpace::standard(spec.desc, kArch)
                       .enumerate(spec.desc, kArch);
  ASSERT_FALSE(all.empty());
  const LaunchParams built = all.front();
  const auto skel = build_skeleton(spec.desc, built, kArch);

  LaunchParams other = built;
  other.unroll = built.unroll == 1 ? 2 : 1;
  EXPECT_THROW(lower_with_skeleton(spec.desc, other, kArch, skel), sw::Error);

  if (spec.desc.vectorizable) {
    LaunchParams vec = built;
    vec.vector_width = built.vector_width == 1 ? 4 : 1;
    EXPECT_THROW(lower_with_skeleton(spec.desc, vec, kArch, skel), sw::Error);
  }
}

TEST(Skeleton, IllegalLaunchFailsIdenticallyThroughEitherPath) {
  // build_skeleton validates exactly like lower(): an illegal variant must
  // not sneak into the cache through the skeleton path.
  const auto spec = kernels::make("hotspot", kernels::Scale::kSmall);
  LaunchParams bad;
  bad.tile = 0;
  EXPECT_THROW(lower(spec.desc, bad, kArch), sw::Error);
  EXPECT_THROW(build_skeleton(spec.desc, bad, kArch), sw::Error);
}

TEST(Skeleton, EvalCacheStoresAndSharesOneInstance) {
  const auto spec = kernels::make("backprop", kernels::Scale::kSmall);
  const auto all = tuning::SearchSpace::standard(spec.desc, kArch)
                       .enumerate(spec.desc, kArch);
  ASSERT_FALSE(all.empty());
  const LaunchParams p = all.front();
  const std::string key = tuning::skeleton_key(spec.desc, p, kArch);

  tuning::EvalCache cache;
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return std::make_shared<const LoweredSkeleton>(
        build_skeleton(spec.desc, p, kArch));
  };
  const auto first = cache.get_or_build_skeleton(key, build);
  const auto second = cache.get_or_build_skeleton(key, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());  // shared, not re-built
  EXPECT_EQ(cache.skeleton_size(), 1u);
  const auto s = cache.stats();
  EXPECT_EQ(s.skeleton_misses, 1u);
  EXPECT_EQ(s.skeleton_hits, 1u);

  // A different unroll is a different skeleton (pick any space sibling
  // with a different codegen class).
  for (const auto& q : all) {
    if (q.unroll == p.unroll && q.vector_width == p.vector_width) continue;
    cache.get_or_build_skeleton(tuning::skeleton_key(spec.desc, q, kArch),
                                [&] {
                                  return std::make_shared<
                                      const LoweredSkeleton>(
                                      build_skeleton(spec.desc, q, kArch));
                                });
    EXPECT_EQ(cache.skeleton_size(), 2u);
    break;
  }
}

TEST(Skeleton, ConcurrentBuildersConvergeOnOneStoredSkeleton) {
  // Hammer one key from many workers: racing first-seen builders are
  // allowed, but everyone must end up lowering through the same stored
  // instance and the counters must add up.
  const auto spec = kernels::make("cfd", kernels::Scale::kSmall);
  const auto all = tuning::SearchSpace::standard(spec.desc, kArch)
                       .enumerate(spec.desc, kArch);
  ASSERT_FALSE(all.empty());
  const LaunchParams p = all.front();
  const std::string key = tuning::skeleton_key(spec.desc, p, kArch);
  const auto reference = lower(spec.desc, p, kArch);

  tuning::EvalCache cache;
  constexpr std::uint64_t kOps = 64;
  std::vector<std::shared_ptr<const LoweredSkeleton>> got(kOps);
  sw::parallel_for(kOps, 8, [&](std::uint64_t i) {
    got[i] = cache.get_or_build_skeleton(key, [&] {
      return std::make_shared<const LoweredSkeleton>(
          build_skeleton(spec.desc, p, kArch));
    });
  });

  EXPECT_EQ(cache.skeleton_size(), 1u);
  const auto s = cache.stats();
  EXPECT_GE(s.skeleton_misses, 1u);
  EXPECT_EQ(s.skeleton_hits + s.skeleton_misses, kOps);
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(got[i]);
    EXPECT_EQ(got[i].get(), got[0].get()) << i;
  }
  expect_identical(reference,
                   lower_with_skeleton(spec.desc, p, kArch, *got[0]),
                   "concurrent skeleton");
}

}  // namespace
}  // namespace swperf::swacc
