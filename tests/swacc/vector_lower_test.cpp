// Vectorized lowering: the SIMD path through swacc and the tuners.
#include <gtest/gtest.h>

#include "kernels/suite.h"
#include "model/model.h"
#include "sim/machine.h"
#include "sw/error.h"
#include "swacc/lower.h"
#include "swacc/validate.h"
#include "tuning/space.h"
#include "tuning/tuner.h"

namespace swperf::swacc {
namespace {

const sw::ArchParams kArch;

double simulated(const KernelDesc& k, const LaunchParams& p) {
  const auto lk = lower(k, p, kArch);
  return sim::simulate(lk.sim_config, lk.binary, lk.programs).total_cycles();
}

TEST(VectorLower, FourLanesSpeedUpComputeBoundKernel) {
  const auto spec = kernels::make("wrf_physics", kernels::Scale::kSmall);
  auto scalar = spec.tuned;
  auto vec = spec.tuned;
  vec.vector_width = 4;
  const double ts = simulated(spec.desc, scalar);
  const double tv = simulated(spec.desc, vec);
  // Compute-bound: close to the full 4x.
  EXPECT_LT(tv, ts / 2.5);
  EXPECT_GT(tv, ts / 4.5);
}

TEST(VectorLower, MemoryBoundKernelGainsLittle) {
  const auto spec = kernels::make("vecadd", kernels::Scale::kSmall);
  auto scalar = spec.tuned;
  scalar.double_buffer = false;
  auto vec = scalar;
  vec.vector_width = 4;
  const double ts = simulated(spec.desc, scalar);
  const double tv = simulated(spec.desc, vec);
  // The DMA floor does not move.
  EXPECT_GT(tv, ts * 0.9);
}

TEST(VectorLower, ModelTracksVectorizedLaunches) {
  const model::PerfModel pm(kArch);
  for (const auto* name : {"kmeans", "hotspot", "wrf_physics"}) {
    const auto spec = kernels::make(name, kernels::Scale::kSmall);
    auto params = spec.tuned;
    params.vector_width = 4;
    // Several chunks per CPE: the reduced test sizes would otherwise leave
    // single-chunk launches, the known weak spot of the virtual-grouping
    // abstraction (see EXPERIMENTS.md deviations).
    params.tile = std::max<std::uint64_t>(
        1, spec.desc.n_outer / (64 * 4));
    const auto lk = lower(spec.desc, params, kArch);
    const auto sim =
        sim::simulate(lk.sim_config, lk.binary, lk.programs);
    const double err = std::abs(pm.predict(lk.summary).t_total -
                                sim.total_cycles()) /
                       sim.total_cycles();
    // Vectorization shifts compute-bound launches toward the scenario-1/2
    // boundary, the model's weakest region (cf. the paper's 9.6% max).
    EXPECT_LT(err, 0.18) << name;
  }
}

TEST(VectorLower, RemainderIterationsRunScalar) {
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);
  LaunchParams p;
  p.tile = 37;  // 37 * 32 inner iterations: not divisible by 4*unroll
  p.unroll = 2;
  p.vector_width = 4;
  const auto lk = lower(spec.desc, p, kArch);
  ASSERT_EQ(lk.binary.blocks.size(), 2u);
  EXPECT_EQ(lk.binary.blocks[0].lanes, 4u);
  EXPECT_EQ(lk.binary.blocks[1].lanes, 1u);  // scalar remainder
}

TEST(VectorLower, NonVectorizableKernelRejected) {
  const auto spec = kernels::make("bfs", kernels::Scale::kSmall);
  auto p = spec.tuned;
  p.vector_width = 4;
  EXPECT_THROW(lower(spec.desc, p, kArch), sw::Error);
  EXPECT_FALSE(validate_launch(spec.desc, p, kArch).ok);
}

TEST(VectorLower, SearchSpaceExtension) {
  const auto dense = kernels::make("kmeans", kernels::Scale::kSmall);
  const auto sv = tuning::SearchSpace::with_vectorization(dense.desc, kArch);
  EXPECT_EQ(sv.vector_widths, (std::vector<std::uint32_t>{1, 4}));
  const auto irregular = kernels::make("bfs", kernels::Scale::kSmall);
  const auto si =
      tuning::SearchSpace::with_vectorization(irregular.desc, kArch);
  EXPECT_EQ(si.vector_widths, (std::vector<std::uint32_t>{1}));
}

TEST(VectorLower, TunerExploitsTheVectorUnit) {
  const auto spec = kernels::make("wrf_physics", kernels::Scale::kSmall);
  const auto space =
      tuning::SearchSpace::with_vectorization(spec.desc, kArch);
  const auto rs = tuning::StaticTuner(kArch).tune(spec.desc, space);
  EXPECT_EQ(rs.best.vector_width, 4u);
  // And the pick is genuinely faster than the best scalar variant.
  const auto scalar_space = tuning::SearchSpace::standard(spec.desc, kArch);
  const auto rs_scalar =
      tuning::StaticTuner(kArch).tune(spec.desc, scalar_space);
  EXPECT_LT(rs.best_measured_cycles, rs_scalar.best_measured_cycles);
}

}  // namespace
}  // namespace swperf::swacc
