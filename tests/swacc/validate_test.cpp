#include "swacc/validate.h"

#include <gtest/gtest.h>

#include "swacc/lower.h"

namespace swperf::swacc {
namespace {

const sw::ArchParams kArch;

KernelDesc tiny_kernel() {
  isa::BlockBuilder b("body");
  const auto x = b.spm_load();
  b.spm_store(b.fadd(x, x));
  KernelDesc k;
  k.name = "tiny";
  k.n_outer = 65536;
  k.inner_iters = 1;
  k.body = std::move(b).build();
  k.arrays = {{"a", Dir::kInOut, Access::kContiguous, 64}};
  return k;
}

TEST(Validate, AcceptsWellFormedLaunch) {
  LaunchParams lp;
  lp.tile = 16;
  const auto r = validate_launch(tiny_kernel(), lp, kArch);
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.message.empty());
}

TEST(Validate, ReportsSpmOverflowWithoutThrowing) {
  LaunchParams lp;
  lp.tile = 2048;  // 2048 * 64 B > 64 KiB
  const auto r = validate_launch(tiny_kernel(), lp, kArch);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("SPM"), std::string::npos);
}

TEST(Validate, ReportsBadParams) {
  LaunchParams lp;
  lp.tile = 0;
  EXPECT_FALSE(validate_launch(tiny_kernel(), lp, kArch).ok);
  lp.tile = 1;
  lp.unroll = 100;
  EXPECT_FALSE(validate_launch(tiny_kernel(), lp, kArch).ok);
  lp.unroll = 1;
  lp.requested_cpes = 10000;
  EXPECT_FALSE(validate_launch(tiny_kernel(), lp, kArch).ok);
}

TEST(Validate, CoverageDetectsDoubleOwnership) {
  // A deliberately corrupted decomposition: two CPEs own chunk 0 because
  // active_cpes does not divide the dealing as recorded.
  Decomposition d;
  d.n_outer = 10;
  d.tile = 5;
  d.n_chunks = 2;
  d.active_cpes = 3;  // chunks_of(2) is empty; chunk ids still partition
  EXPECT_TRUE(validate_coverage(d).ok);

  d.active_cpes = 0;  // nobody owns anything
  const auto r = validate_coverage(d);
  EXPECT_FALSE(r.ok);
}

TEST(Validate, CoverageDetectsWrongTotal) {
  Decomposition d;
  d.n_outer = 11;  // inconsistent with tile * n_chunks coverage below
  d.tile = 5;
  d.n_chunks = 2;  // covers only 10 of 11
  d.active_cpes = 2;
  const auto r = validate_coverage(d);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("coverage"), std::string::npos);
}

}  // namespace
}  // namespace swperf::swacc
