#include "swacc/decompose.h"

#include <gtest/gtest.h>

#include "sw/error.h"
#include "swacc/validate.h"

namespace swperf::swacc {
namespace {

TEST(Decompose, RoundRobinDealsChunks) {
  const auto d = decompose(1000, 10, 4);
  EXPECT_EQ(d.n_chunks, 100u);
  EXPECT_EQ(d.active_cpes, 4u);
  const auto c0 = d.chunks_of(0);
  ASSERT_EQ(c0.size(), 25u);
  EXPECT_EQ(c0[0], 0u);
  EXPECT_EQ(c0[1], 4u);
  EXPECT_EQ(d.elements_of(0), 250u);
  EXPECT_TRUE(d.chunks_of(4).empty());  // inactive CPE
}

TEST(Decompose, PaperTileExample) {
  // Section II-B: 1024-element outer loop with tile(i:32) on the outer loop
  // leaves only 1024/32 = 32 CPEs active.
  const auto d = decompose(1024, 32, 64);
  EXPECT_EQ(d.n_chunks, 32u);
  EXPECT_EQ(d.active_cpes, 32u);
  EXPECT_EQ(d.chunks_of(0).size(), 1u);
  EXPECT_EQ(d.elements_of(31), 32u);
}

TEST(Decompose, TailChunkIsSmaller) {
  const auto d = decompose(100, 30, 8);
  EXPECT_EQ(d.n_chunks, 4u);
  EXPECT_EQ(d.chunk_size(0), 30u);
  EXPECT_EQ(d.chunk_size(3), 10u);
  EXPECT_EQ(d.chunk_begin(3), 90u);
}

TEST(Decompose, SingleCpeGetsEverything) {
  const auto d = decompose(77, 10, 1);
  EXPECT_EQ(d.active_cpes, 1u);
  EXPECT_EQ(d.elements_of(0), 77u);
}

TEST(Decompose, InvalidArgumentsThrow) {
  EXPECT_THROW(decompose(0, 1, 1), sw::Error);
  EXPECT_THROW(decompose(10, 0, 1), sw::Error);
  EXPECT_THROW(decompose(10, 1, 0), sw::Error);
}

struct Case {
  std::uint64_t n;
  std::uint64_t tile;
  std::uint32_t cpes;
};

class CoverageProperty : public ::testing::TestWithParam<Case> {};

TEST_P(CoverageProperty, ChunksPartitionIterationSpace) {
  const auto [n, tile, cpes] = GetParam();
  const auto d = decompose(n, tile, cpes);
  const auto report = validate_coverage(d);
  EXPECT_TRUE(report.ok) << report.message;
  std::uint64_t total = 0;
  for (std::uint32_t c = 0; c < d.active_cpes; ++c) {
    total += d.elements_of(c);
  }
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoverageProperty,
    ::testing::Values(Case{1, 1, 1}, Case{1, 100, 64}, Case{1000, 1, 64},
                      Case{1000, 7, 64}, Case{1024, 32, 64},
                      Case{1023, 32, 64}, Case{1025, 32, 64},
                      Case{65536, 256, 64}, Case{100, 30, 8},
                      Case{12345, 17, 48}, Case{999983, 101, 64},
                      Case{64, 1, 256}));

TEST(Decompose, CoreGroupsNeeded) {
  const sw::ArchParams arch;
  auto d = decompose(10000, 1, 64);
  EXPECT_EQ(d.core_groups_needed(arch), 1u);
  d = decompose(10000, 1, 65);
  EXPECT_EQ(d.core_groups_needed(arch), 2u);
  d = decompose(10000, 1, 256);
  EXPECT_EQ(d.core_groups_needed(arch), 4u);
}

}  // namespace
}  // namespace swperf::swacc
