#include "swacc/lower.h"

#include <gtest/gtest.h>

#include "sw/error.h"

namespace swperf::swacc {
namespace {

const sw::ArchParams kArch;

KernelDesc stream_kernel(std::uint64_t n = 4096) {
  isa::BlockBuilder b("body");
  const auto x = b.spm_load();
  b.spm_store(b.fadd(x, x));
  b.loop_overhead(2);
  KernelDesc k;
  k.name = "stream";
  k.n_outer = n;
  k.inner_iters = 2;
  k.body = std::move(b).build();
  k.arrays = {
      {"in", Dir::kIn, Access::kContiguous, 32},
      {"out", Dir::kOut, Access::kContiguous, 16},
  };
  k.dma_min_tile = 1;
  return k;
}

int count_ops(const sim::CpeProgram& p, auto pred) {
  int n = 0;
  for (const auto& op : p.ops) n += pred(op) ? 1 : 0;
  return n;
}

TEST(Lower, ChunkedProgramStructure) {
  LaunchParams lp;
  lp.tile = 64;
  lp.requested_cpes = 64;
  const auto lk = lower(stream_kernel(), lp, kArch);
  ASSERT_EQ(lk.programs.size(), 64u);
  // 4096/64 = 64 chunks -> 1 chunk per CPE: get, compute, put.
  const auto& p = lk.programs[0];
  const int dmas = count_ops(p, [](const sim::Op& o) {
    return std::holds_alternative<sim::DmaOp>(o);
  });
  const int computes = count_ops(p, [](const sim::Op& o) {
    return std::holds_alternative<sim::ComputeOp>(o);
  });
  EXPECT_EQ(dmas, 2);
  EXPECT_EQ(computes, 1);

  // Copy-in request: 64 elements x 32 B contiguous = 2048 B = 8 MRT.
  const auto& in_req = std::get<sim::DmaOp>(p.ops[0]).req;
  EXPECT_EQ(in_req.total_bytes(), 64u * 32u);
  EXPECT_EQ(in_req.transactions(kArch), 8u);
  EXPECT_EQ(in_req.dir, mem::Direction::kRead);
  // Copy-out: 64 x 16 B.
  const auto& out_req = std::get<sim::DmaOp>(p.ops[2]).req;
  EXPECT_EQ(out_req.total_bytes(), 64u * 16u);
  EXPECT_EQ(out_req.dir, mem::Direction::kWrite);
}

TEST(Lower, SummaryMatchesProgramsForRegularKernel) {
  LaunchParams lp;
  lp.tile = 32;
  const auto lk = lower(stream_kernel(), lp, kArch);
  const auto& s = lk.summary;
  EXPECT_EQ(s.active_cpes, 64u);
  // 128 chunks over 64 CPEs: 2 chunks each, 2 requests per chunk.
  EXPECT_EQ(s.n_dma_reqs(), 4u);
  EXPECT_EQ(s.n_gloads, 0u);
  EXPECT_GT(s.comp_cycles, 0.0);
  EXPECT_DOUBLE_EQ(s.total_flops, stream_kernel().total_flops());
  // Contiguous arrays: no transaction waste.
  EXPECT_DOUBLE_EQ(s.dma_efficiency(), 1.0);

  // The static compute must equal the simulator's compute exactly (the
  // paper's near-zero compute error for regular kernels).
  const auto r = sim::simulate(lk.sim_config, lk.binary, lk.programs);
  EXPECT_DOUBLE_EQ(s.comp_cycles,
                   sw::ticks_to_cycles(r.cpes[0].comp));
}

TEST(Lower, StridedArraysSplitIntoSegments) {
  auto k = stream_kernel();
  k.arrays[0].access = Access::kStrided;
  k.arrays[0].segments_per_outer = 4;  // 4 rows of 8 B each
  LaunchParams lp;
  lp.tile = 16;
  const auto lk = lower(k, lp, kArch);
  const auto& req = std::get<sim::DmaOp>(lk.programs[0].ops[0]).req;
  // 16 outer x 4 segments of 8 B, each rounded to one transaction.
  EXPECT_EQ(req.transactions(kArch), 64u);
  EXPECT_LT(req.efficiency(kArch), 0.05);
  EXPECT_LT(lk.summary.dma_efficiency(), 0.1);
}

TEST(Lower, Block2DSegmentsSpanChunks) {
  auto k = stream_kernel();
  k.arrays[0].access = Access::kBlock2D;
  k.arrays[0].segments_per_outer = 4;  // 4 rows; row bytes = 8 * tile
  LaunchParams lp;
  lp.tile = 64;
  const auto lk = lower(k, lp, kArch);
  const auto& req = std::get<sim::DmaOp>(lk.programs[0].ops[0]).req;
  // 4 segments of 64 * 8 = 512 B each -> 2 transactions per segment.
  EXPECT_EQ(req.transactions(kArch), 8u);
  EXPECT_EQ(req.total_bytes(), 64u * 32u);
}

TEST(Lower, GloadFallbackBelowMinTile) {
  auto k = stream_kernel();
  k.dma_min_tile = 16;
  LaunchParams lp;
  lp.tile = 4;  // below threshold: extra gloads appear
  const auto lk = lower(k, lp, kArch);
  EXPECT_GT(lk.summary.n_gloads, 0u);
  const bool has_gload = count_ops(lk.programs[0], [](const sim::Op& o) {
                           return std::holds_alternative<sim::GloadLoopOp>(o);
                         }) > 0;
  EXPECT_TRUE(has_gload);

  lp.tile = 16;  // at threshold: pure DMA
  const auto ok = lower(k, lp, kArch);
  EXPECT_EQ(ok.summary.n_gloads, 0u);
}

TEST(Lower, UnrollRemainderCoversAllIterations) {
  LaunchParams lp;
  lp.tile = 3;   // chunk inner total = 3 * 2 = 6
  lp.unroll = 4;  // 6 = 1*4 + 2 remainder
  const auto lk = lower(stream_kernel(64), lp, kArch);
  // Per chunk: one unrolled compute + one remainder compute.
  const auto& p = lk.programs[0];
  std::uint64_t unrolled_iters = 0, remainder_iters = 0;
  for (const auto& op : p.ops) {
    if (const auto* c = std::get_if<sim::ComputeOp>(&op)) {
      if (c->block_id == 0) {
        unrolled_iters += c->iters * 4;
      } else {
        remainder_iters += c->iters;
      }
    }
  }
  EXPECT_EQ(unrolled_iters + remainder_iters,
            lk.decomp.elements_of(0) * 2);
}

TEST(Lower, SpmOverflowThrows) {
  LaunchParams lp;
  lp.tile = 4096;  // 4096 * 48 B > 64 KiB
  EXPECT_THROW(lower(stream_kernel(), lp, kArch), sw::Error);
  EXPECT_GT(spm_bytes_required(stream_kernel(), lp), kArch.spm_bytes);
}

TEST(Lower, DoubleBufferDoublesSpmAndRestructures) {
  LaunchParams lp;
  lp.tile = 128;
  const auto plain = lower(stream_kernel(), lp, kArch);
  lp.double_buffer = true;
  const auto db = lower(stream_kernel(), lp, kArch);
  EXPECT_EQ(db.spm_bytes_used, 2 * plain.spm_bytes_used);
  // Double-buffered programs use async DMA + waits.
  const int waits = count_ops(db.programs[0], [](const sim::Op& o) {
    return std::holds_alternative<sim::DmaWaitOp>(o);
  });
  EXPECT_GT(waits, 0);
  int async = 0;
  for (const auto& op : db.programs[0].ops) {
    if (const auto* d = std::get_if<sim::DmaOp>(&op)) {
      async += d->handle >= 0 ? 1 : 0;
    }
  }
  EXPECT_GT(async, 0);
  // And it must still simulate to completion, no slower than serial.
  const auto rp = sim::simulate(plain.sim_config, plain.binary,
                                plain.programs);
  const auto rd = sim::simulate(db.sim_config, db.binary, db.programs);
  EXPECT_LE(rd.total_cycles(), rp.total_cycles() * 1.005);
}

TEST(Lower, BroadcastArraysCopiedOncePerCpe) {
  auto k = stream_kernel();
  k.arrays.push_back({.name = "bc",
                      .dir = Dir::kIn,
                      .access = Access::kBroadcast,
                      .broadcast_bytes = 1024});
  LaunchParams lp;
  lp.tile = 64;
  const auto lk = lower(k, lp, kArch);
  const auto& first = std::get<sim::DmaOp>(lk.programs[0].ops[0]);
  EXPECT_EQ(first.req.total_bytes(), 1024u);
  EXPECT_EQ(first.handle, -1);  // blocking
}

TEST(Lower, ImbalanceSkewsPerCpeWork) {
  auto k = stream_kernel();
  k.comp_imbalance = 0.4;
  LaunchParams lp;
  lp.tile = 8;
  const auto lk = lower(k, lp, kArch);
  const auto r = sim::simulate(lk.sim_config, lk.binary, lk.programs);
  sw::Tick lo = ~sw::Tick{0}, hi = 0;
  for (const auto& c : r.cpes) {
    lo = std::min(lo, c.comp);
    hi = std::max(hi, c.comp);
  }
  EXPECT_GT(static_cast<double>(hi), 1.2 * static_cast<double>(lo));
  // Model summary must describe the longest compute path.
  EXPECT_DOUBLE_EQ(lk.summary.comp_cycles, sw::ticks_to_cycles(hi));
}

TEST(Lower, MultiCgLaunchConfiguration) {
  LaunchParams lp;
  lp.tile = 16;
  lp.requested_cpes = 128;
  const auto lk = lower(stream_kernel(), lp, kArch);
  EXPECT_EQ(lk.summary.active_cpes, 128u);
  EXPECT_EQ(lk.sim_config.core_groups, 2u);
  EXPECT_EQ(lk.programs.size(), 128u);
}

TEST(Lower, RejectsBadParams) {
  EXPECT_THROW(lower(stream_kernel(), LaunchParams{.tile = 0}, kArch),
               sw::Error);
  EXPECT_THROW(lower(stream_kernel(), LaunchParams{.unroll = 0}, kArch),
               sw::Error);
  EXPECT_THROW(
      lower(stream_kernel(), LaunchParams{.requested_cpes = 1000}, kArch),
      sw::Error);
}

TEST(Lower, SimulateKernelConvenience) {
  LaunchParams lp;
  lp.tile = 64;
  const auto r = simulate_kernel(stream_kernel(), lp, kArch);
  EXPECT_GT(r.total_ticks, 0u);
}

}  // namespace
}  // namespace swperf::swacc
