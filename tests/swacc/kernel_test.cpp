#include "swacc/kernel.h"

#include <gtest/gtest.h>

#include "sw/error.h"

namespace swperf::swacc {
namespace {

KernelDesc simple_kernel() {
  isa::BlockBuilder b("body");
  const auto x = b.spm_load();
  b.spm_store(b.fadd(x, x));
  KernelDesc k;
  k.name = "k";
  k.n_outer = 100;
  k.inner_iters = 4;
  k.body = std::move(b).build();
  k.arrays = {
      {"in", Dir::kIn, Access::kContiguous, 16},
      {"out", Dir::kOut, Access::kContiguous, 8},
  };
  return k;
}

TEST(KernelDesc, ValidatesWellFormed) {
  EXPECT_NO_THROW(simple_kernel().validate());
}

TEST(KernelDesc, DerivedHelpers) {
  auto k = simple_kernel();
  EXPECT_EQ(k.spm_bytes_per_outer(), 24u);
  EXPECT_EQ(k.broadcast_bytes_total(), 0u);
  EXPECT_FALSE(k.has_indirect());
  EXPECT_DOUBLE_EQ(k.gloads_per_inner_total(), 0.0);
  // One fadd per inner iteration: 100 * 4 flops.
  EXPECT_DOUBLE_EQ(k.total_flops(), 400.0);

  k.arrays.push_back({.name = "bc",
                      .dir = Dir::kIn,
                      .access = Access::kBroadcast,
                      .broadcast_bytes = 512});
  k.arrays.push_back({.name = "idx",
                      .dir = Dir::kIn,
                      .access = Access::kIndirect,
                      .gloads_per_inner = 1.5,
                      .gload_bytes = 16});
  EXPECT_EQ(k.broadcast_bytes_total(), 512u);
  EXPECT_TRUE(k.has_indirect());
  EXPECT_DOUBLE_EQ(k.gloads_per_inner_total(), 1.5);
  EXPECT_EQ(k.gload_bytes_max(), 16u);
  EXPECT_EQ(k.spm_bytes_per_outer(), 24u);  // broadcast/indirect not staged
}

TEST(KernelDesc, RejectsMalformed) {
  auto k = simple_kernel();
  k.name.clear();
  EXPECT_THROW(k.validate(), sw::Error);

  k = simple_kernel();
  k.n_outer = 0;
  EXPECT_THROW(k.validate(), sw::Error);

  k = simple_kernel();
  k.body.instrs.clear();
  EXPECT_THROW(k.validate(), sw::Error);

  k = simple_kernel();
  k.arrays[0].bytes_per_outer = 0;
  EXPECT_THROW(k.validate(), sw::Error);

  k = simple_kernel();
  k.arrays[0].access = Access::kStrided;
  k.arrays[0].segments_per_outer = 3;  // must divide 16
  EXPECT_THROW(k.validate(), sw::Error);

  k = simple_kernel();
  k.arrays.push_back({.name = "bc",
                      .dir = Dir::kOut,  // broadcast must be read-only
                      .access = Access::kBroadcast,
                      .broadcast_bytes = 64});
  EXPECT_THROW(k.validate(), sw::Error);

  k = simple_kernel();
  k.arrays.push_back({.name = "idx",
                      .dir = Dir::kIn,
                      .access = Access::kIndirect,
                      .gloads_per_inner = 1.0,
                      .gload_bytes = 64});  // > 32
  EXPECT_THROW(k.validate(), sw::Error);

  k = simple_kernel();
  k.comp_imbalance = 1.5;
  EXPECT_THROW(k.validate(), sw::Error);
}

TEST(LaunchParams, ToStringIsReadable) {
  LaunchParams p;
  p.tile = 32;
  p.unroll = 4;
  p.requested_cpes = 48;
  p.double_buffer = true;
  EXPECT_EQ(p.to_string(), "tile=32 unroll=4 cpes=48 db");
}

TEST(ArrayRef, DirectionHelpers) {
  ArrayRef a{"x", Dir::kInOut, Access::kContiguous, 8};
  EXPECT_TRUE(a.copies_in());
  EXPECT_TRUE(a.copies_out());
  EXPECT_TRUE(a.staged());
  a.dir = Dir::kIn;
  EXPECT_FALSE(a.copies_out());
  a.access = Access::kIndirect;
  EXPECT_FALSE(a.staged());
  a.access = Access::kBlock2D;
  EXPECT_TRUE(a.staged());
}

}  // namespace
}  // namespace swperf::swacc
