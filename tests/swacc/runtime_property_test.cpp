// Randomized property tests of the functional runtime: for arbitrary
// kernel shapes and launch parameters, staged execution must be a
// permutation-free, loss-free transport — every input byte visible
// exactly where the source program would see it, every output byte landed
// where the source program would write it.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sw/rng.h"
#include "swacc/runtime.h"

namespace swperf::swacc {
namespace {

const sw::ArchParams kArch;

struct RandomKernel {
  KernelDesc desc;
  std::uint32_t in_elem = 0;   // uint32 elements per outer, input
  std::uint32_t out_elem = 0;  // uint32 elements per outer, output
};

RandomKernel make_kernel(sw::Rng& rng) {
  isa::BlockBuilder b("body");
  const auto x = b.spm_load();
  b.spm_store(b.fixed(x));
  RandomKernel k;
  k.desc.name = "rand";
  k.desc.n_outer = 64 + rng.next_below(2000);
  k.desc.inner_iters = 1;
  k.desc.body = std::move(b).build();
  k.in_elem = static_cast<std::uint32_t>(1 + rng.next_below(8));
  k.out_elem = static_cast<std::uint32_t>(1 + rng.next_below(8));
  k.desc.arrays = {
      {"in", Dir::kIn, Access::kContiguous, 4ull * k.in_elem},
      {"out", Dir::kOut, Access::kContiguous, 4ull * k.out_elem},
  };
  return k;
}

class RuntimeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuntimeProperty, IdentityTransportIsLossFree) {
  sw::Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const auto k = make_kernel(rng);
    const std::size_t n = k.desc.n_outer;
    std::vector<std::uint32_t> in(n * k.in_elem);
    std::iota(in.begin(), in.end(), 1u);  // position-coded payload
    std::vector<std::uint32_t> out(n * k.out_elem, 0);

    LaunchParams lp;
    lp.tile = 1 + rng.next_below(64);
    lp.requested_cpes =
        static_cast<std::uint32_t>(1 + rng.next_below(64));

    Runtime rt(k.desc, lp, kArch);
    ArrayBindings bind;
    bind.bind_const<const std::uint32_t>("in", in);
    bind.bind<std::uint32_t>("out", out);
    const std::uint32_t in_e = k.in_elem, out_e = k.out_elem;
    rt.run(bind, [&](ChunkContext& ctx) {
      const auto vi = ctx.spm<std::uint32_t>("in");
      auto vo = ctx.spm<std::uint32_t>("out");
      ASSERT_EQ(vi.size(), ctx.size() * in_e);
      ASSERT_EQ(vo.size(), ctx.size() * out_e);
      for (std::uint64_t i = 0; i < ctx.size(); ++i) {
        // Each staged input element must be exactly the global element of
        // its outer index (the position coding verifies placement).
        const std::uint64_t outer = ctx.begin() + i;
        ASSERT_EQ(vi[i * in_e],
                  static_cast<std::uint32_t>(outer * in_e + 1));
        // Write a position-coded output through SPM.
        for (std::uint32_t e = 0; e < out_e; ++e) {
          vo[i * out_e + e] =
              static_cast<std::uint32_t>(outer * out_e + e + 7);
        }
      }
    });

    // Every output byte landed, exactly once, at the right place.
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], static_cast<std::uint32_t>(i + 7))
          << "trial " << trial << " " << lp.to_string();
    }
    // Traffic accounting matches the requested bytes.
    EXPECT_EQ(rt.bytes_staged_in(), in.size() * 4);
    EXPECT_EQ(rt.bytes_staged_out(), out.size() * 4);
  }
}

TEST_P(RuntimeProperty, InOutArraysRoundTrip) {
  sw::Rng rng(GetParam() ^ 0xf00d);
  isa::BlockBuilder b("body");
  const auto x = b.spm_load();
  b.spm_store(b.fixed(x));
  KernelDesc k;
  k.name = "inout";
  k.n_outer = 100 + rng.next_below(500);
  k.body = std::move(b).build();
  k.arrays = {{"data", Dir::kInOut, Access::kContiguous, 8}};

  std::vector<std::uint64_t> data(k.n_outer);
  std::iota(data.begin(), data.end(), 0ull);
  const auto original = data;

  LaunchParams lp;
  lp.tile = 1 + rng.next_below(32);
  Runtime rt(k, lp, kArch);
  ArrayBindings bind;
  bind.bind<std::uint64_t>("data", data);
  rt.run(bind, [](ChunkContext& ctx) {
    auto v = ctx.spm<std::uint64_t>("data");
    for (auto& e : v) e = e * 2 + 1;  // in-place update through SPM
  });
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i], original[i] * 2 + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeProperty,
                         ::testing::Values(7, 42, 1234, 99999));

}  // namespace
}  // namespace swperf::swacc
