// Forced-regression proof of the optimizer's accept-or-rollback contract:
// adversarial passes are injected through the custom-registry constructor
// and must be rejected with the right provenance, leaving the incumbent
// untouched.
//
//   WorsePass    — proposes a strictly worse launch (1 CPE).  Guard 1
//                  (model improvement) rejects it before anything is
//                  installed: predicted_no_improvement.
//   BreakerPass  — halves n_outer: the model and simulator both *love* it
//                  (half the work) and the checker stays clean, so it
//                  survives guards 1–3 and must be caught by the
//                  differential harness: not_equivalent, then rollback.
//
// Both cases assert the three observable consequences of a rejection: the
// step is recorded with its reason, the final state equals the initial
// state bit for bit, and nothing was accepted.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "kernels/suite.h"
#include "pipeline/session.h"
#include "transform/optimizer.h"
#include "transform/passes.h"

namespace {

using namespace swperf;
using transform::Candidate;
using transform::Proposal;
using transform::TransformStep;

/// Emits one proposal built by `mutate`; refuses once the incumbent
/// already matches it (so the optimizer terminates).
template <typename Fn>
class InjectedPass : public transform::Pass {
 public:
  InjectedPass(const char* name, Fn mutate)
      : name_(name), mutate_(std::move(mutate)) {}
  const char* name() const override { return name_; }
  transform::PassKind kind() const override {
    return transform::PassKind::kRetile;
  }
  std::vector<Proposal> propose(const Candidate& c,
                                const analysis::Legality&,
                                const sw::ArchParams&) const override {
    Proposal p;
    p.candidate = c;
    mutate_(p.candidate);
    p.step.kind = kind();
    p.step.pass = name_;
    p.step.detail = "injected";
    p.step.params_before = c.params;
    p.step.params_after = p.candidate.params;
    p.step.kernel_mutated =
        p.candidate.kernel.inner_iters != c.kernel.inner_iters;
    return {std::move(p)};
  }

 private:
  const char* name_;
  Fn mutate_;
};

template <typename Fn>
std::vector<std::unique_ptr<transform::Pass>> registry_of(const char* name,
                                                          Fn mutate) {
  std::vector<std::unique_ptr<transform::Pass>> v;
  v.push_back(
      std::make_unique<InjectedPass<Fn>>(name, std::move(mutate)));
  return v;
}

TEST(Rollback, WorseScoringPassIsRejectedByTheModelGuard) {
  pipeline::Session session;
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);

  transform::Optimizer opt(
      session, {},
      registry_of("worse", [](Candidate& c) { c.params.requested_cpes = 1; }));
  const auto r = opt.optimize(spec.desc, spec.tuned);

  ASSERT_EQ(r.steps.size(), 1u);
  const auto& rec = r.steps[0];
  EXPECT_FALSE(rec.accepted);
  EXPECT_EQ(rec.rejection, transform::reject::kPredictedNoImprovement);
  EXPECT_FALSE(rec.verdicts.model_improved);
  // Guards short-circuit: the candidate never reached the simulator.
  EXPECT_EQ(rec.measured_after, 0.0);

  // Incumbent restored (it was never installed).
  EXPECT_EQ(r.accepted_steps, 0);
  EXPECT_EQ(r.final_params.to_string(), spec.tuned.to_string());
  EXPECT_EQ(r.final_predicted, r.initial_predicted);
  EXPECT_EQ(r.final_measured, r.initial_measured);
  EXPECT_FALSE(r.kernel_mutated());
}

TEST(Rollback, EquivalenceFailingPassIsRejectedAndRolledBack) {
  pipeline::Session session;
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);

  // Halving the inner loop is the classic wrong-but-fast rewrite: the
  // model and simulator both report fewer cycles and the checker sees a
  // perfectly well-formed launch — only the differential harness can tell
  // the kernel no longer computes the same thing.  (Shrinking n_outer
  // would be caught earlier: the checker flags the changed decomposition.)
  transform::Optimizer opt(
      session, {},
      registry_of("break", [](Candidate& c) { c.kernel.inner_iters /= 2; }));
  const auto r = opt.optimize(spec.desc, spec.tuned);

  ASSERT_EQ(r.steps.size(), 1u);
  const auto& rec = r.steps[0];
  EXPECT_FALSE(rec.accepted);
  EXPECT_EQ(rec.rejection, transform::reject::kNotEquivalent);
  // It survived the first three guards — that is the point of the test.
  EXPECT_TRUE(rec.verdicts.model_improved);
  EXPECT_TRUE(rec.verdicts.sim_confirmed);
  EXPECT_TRUE(rec.verdicts.checker_clean);
  EXPECT_FALSE(rec.verdicts.equivalent);
  EXPECT_LT(rec.measured_after, rec.measured_before);

  // Rollback restored the incumbent wholesale, kernel included.
  EXPECT_EQ(r.accepted_steps, 0);
  EXPECT_EQ(r.final_kernel.inner_iters, spec.desc.inner_iters);
  EXPECT_EQ(r.final_params.to_string(), spec.tuned.to_string());
  EXPECT_EQ(r.final_predicted, r.initial_predicted);
  EXPECT_EQ(r.final_measured, r.initial_measured);
  EXPECT_FALSE(r.kernel_mutated());
}

TEST(Rollback, AcceptedStepsClearAllFourGuards) {
  pipeline::Session session;
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);
  transform::Optimizer opt(session);
  const auto r = opt.optimize(spec.desc, spec.naive);

  ASSERT_GT(r.accepted_steps, 0) << "kmeans naive must be optimizable";
  double last_measured = r.initial_measured;
  for (const auto& rec : r.steps) {
    if (!rec.accepted) {
      EXPECT_FALSE(rec.rejection.empty());
      EXPECT_FALSE(rec.verdicts.all());
      continue;
    }
    EXPECT_TRUE(rec.rejection.empty());
    EXPECT_TRUE(rec.verdicts.all());
    EXPECT_LT(rec.predicted_after, rec.predicted_before);
    EXPECT_LT(rec.measured_after, rec.measured_before);
    // Accepted steps chain: each starts from the previous incumbent.
    EXPECT_EQ(rec.measured_before, last_measured);
    last_measured = rec.measured_after;
  }
  EXPECT_EQ(r.final_measured, last_measured);
  EXPECT_LT(r.final_measured, r.initial_measured);
  EXPECT_GT(r.speedup(), 1.0);
}

TEST(Rollback, IllegalInitialLaunchThrows) {
  pipeline::Session session;
  const auto spec = kernels::make("kmeans", kernels::Scale::kSmall);
  auto params = spec.tuned;
  params.tile = 1ull << 40;  // no SPM holds this
  transform::Optimizer opt(session);
  EXPECT_THROW(opt.optimize(spec.desc, params), sw::Error);
}

}  // namespace
