// Golden provenance logs: the full `swperf optimize --deterministic-json`
// report for every Table II kernel (naive launch, small scale), pinned
// byte-for-byte against a checked-in fixture.  This freezes three
// contracts at once: the optimizer's decisions (which steps are tried, in
// which order, which are accepted and why the rest are rejected), the
// model/simulator numbers those decisions rest on, and the provenance
// JSON schema itself (field order, number formatting).
//
// Refreshing after an intentional change to any of the three:
//   SWPERF_REGEN_GOLDEN=1 ctest -R TransformGolden
// then review the fixture diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "kernels/suite.h"
#include "pipeline/session.h"
#include "transform/optimizer.h"
#include "transform/provenance.h"

namespace {

using namespace swperf;

std::string fixture_path(const std::string& kernel) {
  return std::string(SWPERF_TRANSFORM_GOLDEN_DIR) + "/" + kernel + ".json";
}

/// Exactly what `swperf optimize <kernel> --small --deterministic-json`
/// prints: the default-options report with host timing zeroed.
std::string current_report(const std::string& kernel) {
  pipeline::Session session;
  const auto spec = kernels::make(kernel, kernels::Scale::kSmall);
  transform::Optimizer opt(session);
  const auto r = opt.optimize(spec.desc, spec.naive);
  return serde::optimize_report_json(r, /*deterministic=*/true).dump() + "\n";
}

class TransformGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(TransformGolden, ProvenanceLogPinned) {
  const std::string kernel = GetParam();
  const std::string report = current_report(kernel);

  if (const char* regen = std::getenv("SWPERF_REGEN_GOLDEN");
      regen != nullptr && std::string(regen) == "1") {
    std::ofstream out(fixture_path(kernel), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << fixture_path(kernel);
    out << report;
    GTEST_SKIP() << "regenerated " << fixture_path(kernel);
  }

  std::ifstream in(fixture_path(kernel), std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << fixture_path(kernel)
                  << " (regenerate with SWPERF_REGEN_GOLDEN=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(report, buf.str()) << "provenance log for " << kernel
                               << " drifted from the checked-in fixture";
}

TEST_P(TransformGolden, FixtureIsSerdeCanonical) {
  // The checked-in log round-trips through the parser unchanged — the
  // byte-stability contract the serde fixtures pin, extended here.
  std::ifstream in(fixture_path(GetParam()), std::ios::binary);
  if (!in) GTEST_SKIP() << "fixture not present";
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto r = serde::Json::parse(line);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.dump(), line);
  // Schema spot checks the docs promise (docs/OPTIMIZE.md).
  for (const char* field :
       {"kernel", "initial_params", "final_params", "kernel_mutated",
        "initial_predicted", "final_predicted", "initial_measured",
        "final_measured", "speedup", "rounds", "accepted_steps", "steps",
        "host_seconds"}) {
    EXPECT_TRUE(r.value.contains(field)) << field;
  }
  EXPECT_EQ(r.value.at("host_seconds").as_double(), 0.0)
      << "deterministic report must zero host timing";
  ASSERT_TRUE(r.value.at("steps").is_array());
  for (const auto& s : r.value.at("steps").items()) {
    for (const char* field : {"round", "step", "predicted_before",
                              "predicted_after", "measured_before",
                              "measured_after", "verdicts", "accepted",
                              "rejection", "label"}) {
      EXPECT_TRUE(s.contains(field)) << field;
    }
    const bool accepted = s.at("accepted").as_bool();
    EXPECT_EQ(s.at("rejection").as_string().empty(), accepted);
  }
}

INSTANTIATE_TEST_SUITE_P(TableII, TransformGolden,
                         ::testing::ValuesIn(kernels::table2_kernels()),
                         [](const auto& pinfo) { return pinfo.param; });

}  // namespace
