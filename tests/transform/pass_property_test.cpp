// Property test of the transformation pass library: every pass, driven
// over 100+ seeded random kernels, either *applies* (emits proposals) or
// *cleanly refuses* (returns an empty list without throwing) — and every
// emitted proposal upholds the pass contract:
//
//   1. the rewritten launch passes analysis::launch_legality;
//   2. the rewritten launch introduces no checker *errors* the incumbent
//      did not already carry (random kernels legitimately carry warnings);
//   3. the rewrite is bit-identical to the incumbent under the
//      differential harness — the outputs the functional runtime produces
//      for the rewritten candidate match the incumbent's byte for byte;
//   4. the provenance step is faithfully typed: pass name and kind match
//      the emitting pass, params_before is the incumbent's launch.
//
// The generator is the same one the tuning bound/b&b tests use
// (tests/tuning/random_kernel_testutil.h): bodies and arrays span every
// Access kind, so each pass sees kernels inside and outside its
// preconditions.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "analysis/legality.h"
#include "sw/arch.h"
#include "sw/rng.h"
#include "transform/equivalence.h"
#include "transform/passes.h"
#include "tuning/random_kernel_testutil.h"

namespace {

using namespace swperf;
using transform::Candidate;

constexpr int kKernelsPerPass = 120;

/// Multiset of checker error signatures: a proposal may keep pre-existing
/// errors' absence (random_valid_pair guarantees none) but must not mint
/// new ones.
int error_count(const analysis::Diagnostics& diags) {
  return analysis::count_at_least(diags, analysis::Severity::kError);
}

class PassProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  PassProperty() : passes_(transform::standard_passes()) {}
  const transform::Pass& pass() const { return *passes_[GetParam()]; }

 private:
  std::vector<std::unique_ptr<transform::Pass>> passes_;
};

TEST_P(PassProperty, AppliesOrCleanlyRefusesOnRandomKernels) {
  const auto arch = sw::ArchParams::sw26010();
  // Seed varies per pass so the populations are independent draws.
  sw::Rng rng(0xbadc0ffeeULL + 0x9e37ULL * GetParam());
  int applied = 0;
  int refused = 0;
  for (int i = 0; i < kKernelsPerPass; ++i) {
    const auto [kernel, params] =
        tuning::testutil::random_valid_pair(rng, arch);
    const Candidate incumbent{kernel, params};
    const auto facts = analysis::launch_legality(kernel, params, arch);

    // propose() never throws: a pass whose preconditions fail refuses by
    // returning an empty list.
    std::vector<transform::Proposal> proposals;
    ASSERT_NO_THROW(proposals = pass().propose(incumbent, facts, arch))
        << pass().name() << " threw on kernel " << i;
    if (proposals.empty()) {
      ++refused;
      continue;
    }
    ++applied;

    for (const auto& p : proposals) {
      const std::string where =
          std::string(pass().name()) + " on kernel " + std::to_string(i) +
          ": " + p.step.detail;

      // (4) typed provenance.
      EXPECT_EQ(p.step.pass, pass().name()) << where;
      EXPECT_EQ(p.step.kind, pass().kind()) << where;
      EXPECT_EQ(p.step.params_before.to_string(), params.to_string())
          << where;
      EXPECT_EQ(p.step.params_after.to_string(),
                p.candidate.params.to_string())
          << where;

      // (1) emitted proposals are already launch-legal.
      const auto legality = analysis::launch_legality(
          p.candidate.kernel, p.candidate.params, arch);
      EXPECT_TRUE(legality.launch_legal) << where;

      // (2) no new checker errors (the incumbent is error-free by
      // construction of random_valid_pair).
      const auto diags = analysis::check_launch(p.candidate.kernel,
                                                p.candidate.params, arch);
      EXPECT_EQ(error_count(diags), 0) << where;

      // (3) bit-identical under the differential harness.  A kernel with
      // no output arrays compares zero bytes (vacuously equivalent); any
      // output array must actually be compared.
      const auto eq =
          transform::check_equivalence(incumbent, p.candidate, arch);
      EXPECT_TRUE(eq.holds()) << where << " — " << eq.detail;
      const bool has_output = std::any_of(
          kernel.arrays.begin(), kernel.arrays.end(), [](const auto& a) {
            return a.dir != swacc::Dir::kIn;
          });
      if (has_output) {
        EXPECT_GT(eq.bytes_compared, 0u) << where;
      }
    }
  }
  // Sanity on the population: over 120 diverse kernels every standard pass
  // must fire at least once, or the test is vacuous for it.
  EXPECT_GT(applied, 0) << pass().name() << " never applied";
  EXPECT_EQ(applied + refused, kKernelsPerPass);
}

std::string pass_test_name(
    const ::testing::TestParamInfo<std::size_t>& info) {
  const auto passes = transform::standard_passes();
  std::string name = passes[info.param]->name();
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPasses, PassProperty,
    ::testing::Range<std::size_t>(0, transform::standard_passes().size()),
    pass_test_name);

TEST(PassRegistry, DeterministicOrderAndDistinctNames) {
  const auto a = transform::standard_passes();
  const auto b = transform::standard_passes();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_STREQ(a[i]->name(), b[i]->name()) << "registry order unstable";
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_STRNE(a[i]->name(), a[j]->name());
    }
  }
}

}  // namespace
