// The optimizer's determinism contract: any --jobs value yields the
// bit-identical run.  Scoring fans out over the worker pool (results into
// pre-sized slots), every decision is taken serially in enumeration order
// — so the accepted sequence, the rejected candidates, their recorded
// numbers, and the final kernel/launch must all match between a serial and
// a heavily oversubscribed run.  Lives under the `concurrency` label so
// the tsan preset audits the pool fan-out.
#include <gtest/gtest.h>

#include <string>

#include "kernels/suite.h"
#include "pipeline/session.h"
#include "transform/optimizer.h"
#include "transform/provenance.h"

namespace {

using namespace swperf;

/// The whole observable run, canonically rendered: the deterministic JSON
/// report covers every field two runs could disagree on.
std::string run_with_jobs(const std::string& kernel, int jobs) {
  pipeline::Session session;  // fresh session: no cross-run memoization
  const auto spec = kernels::make(kernel, kernels::Scale::kSmall);
  transform::OptimizerOptions opts;
  opts.jobs = jobs;
  transform::Optimizer opt(session, opts);
  const auto r = opt.optimize(spec.desc, spec.naive);
  return serde::optimize_report_json(r, /*deterministic=*/true).dump();
}

class OptimizerDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerDeterminism, JobsOneAndEightBitIdentical) {
  const std::string serial = run_with_jobs(GetParam(), 1);
  const std::string parallel = run_with_jobs(GetParam(), 8);
  EXPECT_EQ(serial, parallel);
}

TEST_P(OptimizerDeterminism, RepeatedSerialRunsBitIdentical) {
  // The baseline the parallel comparison rests on: the run itself is a
  // pure function of (kernel, options).
  EXPECT_EQ(run_with_jobs(GetParam(), 1), run_with_jobs(GetParam(), 1));
}

INSTANTIATE_TEST_SUITE_P(TableII, OptimizerDeterminism,
                         ::testing::ValuesIn(kernels::table2_kernels()),
                         [](const auto& pinfo) { return pinfo.param; });

}  // namespace
