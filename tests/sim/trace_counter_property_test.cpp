// Conservation properties tying the causal trace to the engines'
// aggregate counters, on seeded random kernels.
//
// The trace is not a parallel bookkeeping system — every event is an
// observation of the same machine state the counters summarize, so the
// two must reconcile exactly:
//
//   * the summed duration of the kMemService events equals the
//     controller-busy tick count (each transaction occupies the
//     controller exclusively);
//   * one kMemService event per transaction, one kDmaIssue event per
//     DMA train the fast engine forms;
//   * the engines' events_popped differ by exactly the pops the
//     fast-forward path removed: a fast-forwarded train of n
//     transactions pops once where the reference pops n arrivals plus n
//     service completions (ref == fast + 2·ff_transactions −
//     trains_fast_forwarded).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "isa/block.h"
#include "mem/dma.h"
#include "mem/request.h"
#include "sim/machine.h"
#include "sim/program.h"
#include "sim/trace.h"
#include "sw/rng.h"

namespace swperf::sim {
namespace {

const sw::ArchParams kArch;

struct Launch {
  KernelBinary bin;
  std::vector<CpeProgram> programs;
};

/// Same mix family as the fast-engine identity tests: blocking and async
/// DMA, compute, gload loops, barriers, delays.
Launch make_launch(std::uint64_t seed) {
  sw::Rng rng(seed);
  Launch l;
  isa::BlockBuilder b("body");
  const auto x = b.reg();
  const int n_ops = 2 + static_cast<int>(rng.next_below(10));
  for (int i = 0; i < n_ops; ++i) b.fmul(x, x);
  l.bin.add_block(std::move(b).build());

  const std::size_t n_cpes = 1 + rng.next_below(64);
  const bool use_barriers = rng.next_below(2) == 0;
  l.programs.resize(n_cpes);
  for (auto& p : l.programs) {
    p.delay(rng.next_below(2000));
    const int chunks = 1 + static_cast<int>(rng.next_below(4));
    for (int c = 0; c < chunks; ++c) {
      const std::uint64_t bytes = 256 * (1 + rng.next_below(32));
      const auto req = mem::DmaRequest::contiguous(bytes);
      if (rng.next_below(3) == 0) {
        p.dma(req, 0).compute(0, 8 + rng.next_below(64)).dma_wait(0);
      } else {
        p.dma(req);
      }
      p.compute(0, 8 + rng.next_below(96));
    }
    if (rng.next_below(4) == 0) {
      GloadLoopOp g;
      g.count = 1 + rng.next_below(24);
      g.bytes = 8;
      g.compute_ticks_per_elem = rng.next_below(32);
      p.gload_loop(g);
    }
    if (use_barriers) p.barrier();
  }
  return l;
}

sw::Tick summed_service_ticks(const Trace& t) {
  sw::Tick sum = 0;
  for (const auto& e : t.events) {
    if (e.what == Activity::kMemService) sum += e.end - e.begin;
  }
  return sum;
}

std::uint64_t count(const Trace& t, Activity a) {
  std::uint64_t n = 0;
  for (const auto& e : t.events) n += e.what == a ? 1 : 0;
  return n;
}

class TraceCounterProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TraceCounterProperty, ServiceEventsCoverControllerBusyTime) {
  const Launch l = make_launch(GetParam());
  SimConfig cfg{kArch, 1};
  cfg.trace = true;
  const SimResult fast = simulate(cfg, l.bin, l.programs);
  const SimResult ref = simulate_reference(cfg, l.bin, l.programs);

  EXPECT_EQ(summed_service_ticks(fast.trace), fast.mem_busy_ticks);
  EXPECT_EQ(summed_service_ticks(ref.trace), ref.mem_busy_ticks);
  EXPECT_EQ(count(fast.trace, Activity::kMemService), fast.transactions);
  EXPECT_EQ(count(ref.trace, Activity::kMemService), ref.transactions);
}

TEST_P(TraceCounterProperty, CountersReconcileAcrossEngines) {
  const Launch l = make_launch(GetParam() ^ 0xc0ffee);
  SimConfig cfg{kArch, 1};
  cfg.trace = true;
  const SimResult fast = simulate(cfg, l.bin, l.programs);
  const SimResult ref = simulate_reference(cfg, l.bin, l.programs);

  // Identical event streams first — everything below reconciles *how*
  // the engines produced the identical observable behaviour.
  ASSERT_EQ(fast.trace.events, ref.trace.events);

  // The fast engine forms one train per DMA request; the reference
  // engine forms none.  Both leave one kDmaIssue mark per request.
  EXPECT_EQ(count(fast.trace, Activity::kDmaIssue),
            fast.counters.dma_trains);
  EXPECT_EQ(ref.counters.dma_trains, 0u);
  EXPECT_EQ(ref.counters.trains_fast_forwarded, 0u);
  EXPECT_EQ(ref.counters.ff_transactions, 0u);

  // The reference engine never batches contended grants nor absorbs
  // train arrivals.
  EXPECT_EQ(ref.counters.batched_grants, 0u);
  EXPECT_EQ(ref.counters.batched_transactions, 0u);
  EXPECT_EQ(ref.counters.train_arrivals_absorbed, 0u);

  // Both engines drive the same arrivals to the same enqueue verdicts.
  // The high-water mark may read lower on the fast engine (batched grants
  // pop waiters before the window's interleaved arrivals are admitted).
  EXPECT_EQ(ref.counters.mc_enqueued, fast.counters.mc_enqueued);
  EXPECT_LE(fast.counters.mc_max_queued, ref.counters.mc_max_queued);

  // A fast-forwarded train of n transactions costs the fast engine one
  // pop; the reference pays n arrival pops + n service-completion pops.
  // A batched grant window of k transactions costs the fast engine one
  // service pop; the reference pays k.  Each absorbed train arrival is
  // one arrival pop the reference pays and the fast engine skips.
  EXPECT_EQ(ref.counters.events_popped,
            fast.counters.events_popped + 2 * fast.counters.ff_transactions -
                fast.counters.trains_fast_forwarded +
                fast.counters.batched_transactions -
                fast.counters.batched_grants +
                fast.counters.train_arrivals_absorbed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceCounterProperty,
                         ::testing::Values(3, 11, 19, 27, 43, 59, 67, 83,
                                           101, 127));

}  // namespace
}  // namespace swperf::sim
