// Randomized invariant tests of the full simulator: arbitrary well-formed
// program mixes must respect conservation bounds, determinism, and
// breakdown consistency.
#include <gtest/gtest.h>

#include <algorithm>

#include "isa/schedule.h"
#include "mem/controller.h"
#include "sim/machine.h"
#include "sw/rng.h"

namespace swperf::sim {
namespace {

const sw::ArchParams kArch;

struct RandomLaunch {
  KernelBinary bin;
  std::vector<CpeProgram> programs;
  std::uint64_t total_transactions = 0;
  sw::Tick serial_comp_max = 0;  // busiest CPE's compute, ticks
};

RandomLaunch make_launch(std::uint64_t seed) {
  sw::Rng rng(seed);
  RandomLaunch l;
  isa::BlockBuilder b("body");
  const auto x = b.reg();
  const int n_ops = 4 + static_cast<int>(rng.next_below(12));
  for (int i = 0; i < n_ops; ++i) b.fmul(x, x);
  const auto blk = std::move(b).build();
  isa::LoopSchedule ls(blk, kArch);
  l.bin.add_block(blk);

  const std::size_t n_cpes = 8 + rng.next_below(57);  // 8..64
  l.programs.resize(n_cpes);
  for (auto& p : l.programs) {
    sw::Tick comp = 0;
    const int chunks = 1 + static_cast<int>(rng.next_below(6));
    for (int c = 0; c < chunks; ++c) {
      const std::uint64_t bytes = 256 * (1 + rng.next_below(32));
      const auto req = mem::DmaRequest::contiguous(bytes);
      l.total_transactions += req.transactions(kArch);
      p.dma(req);
      const std::uint64_t iters = 16 + rng.next_below(256);
      p.compute(0, iters);
      comp += sw::cycles_to_ticks(ls.cycles(iters));
      if (rng.next_below(2) == 0) {
        const auto out =
            mem::DmaRequest::contiguous(bytes, mem::Direction::kWrite);
        l.total_transactions += out.transactions(kArch);
        p.dma(out);
      }
    }
    if (rng.next_below(3) == 0) {
      GloadLoopOp g;
      g.count = 1 + rng.next_below(64);
      g.bytes = 8;
      g.compute_ticks_per_elem = rng.next_below(50);
      l.total_transactions += g.count;
      p.gload_loop(g);
      comp += g.count * g.compute_ticks_per_elem;
    }
    l.serial_comp_max = std::max(l.serial_comp_max, comp);
  }
  return l;
}

class SimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimProperty, ConservationBounds) {
  const auto l = make_launch(GetParam());
  const auto r = simulate(SimConfig{kArch, 1}, l.bin, l.programs);

  // Exactly the planned transactions hit the DRAM.
  EXPECT_EQ(r.transactions, l.total_transactions);

  // Lower bounds: bandwidth floor and the busiest CPE's compute.
  const double bw_floor =
      static_cast<double>(l.total_transactions) *
      kArch.trans_service_cycles();
  EXPECT_GE(r.total_cycles(), bw_floor * 0.999);
  EXPECT_GE(r.total_ticks, l.serial_comp_max);

  // Upper bound: complete serialisation of everything.
  const double serial_all =
      bw_floor + sw::ticks_to_cycles(l.serial_comp_max) *
                     static_cast<double>(l.programs.size()) +
      static_cast<double>(l.total_transactions) *
          (kArch.l_base_cycles + kArch.delta_delay_cycles);
  EXPECT_LE(r.total_cycles(), serial_all);

  // Per-CPE breakdown is self-consistent for serial programs.
  for (const auto& c : r.cpes) {
    EXPECT_EQ(c.finish,
              c.comp + c.dma_wait + c.gload_wait + c.barrier_wait);
  }

  // Memory accounting: busy time equals transactions x service time.
  EXPECT_EQ(r.mem_busy_ticks,
            l.total_transactions *
                mem::MemoryController(kArch).service_ticks());
}

TEST_P(SimProperty, DeterministicAcrossRuns) {
  const auto l = make_launch(GetParam() ^ 0xdead);
  const auto a = simulate(SimConfig{kArch, 1}, l.bin, l.programs);
  const auto b = simulate(SimConfig{kArch, 1}, l.bin, l.programs);
  ASSERT_EQ(a.cpes.size(), b.cpes.size());
  EXPECT_EQ(a.total_ticks, b.total_ticks);
  for (std::size_t i = 0; i < a.cpes.size(); ++i) {
    EXPECT_EQ(a.cpes[i].finish, b.cpes[i].finish);
    EXPECT_EQ(a.cpes[i].dma_wait, b.cpes[i].dma_wait);
    EXPECT_EQ(a.cpes[i].gload_wait, b.cpes[i].gload_wait);
  }
}

TEST_P(SimProperty, TraceDurationsMatchStats) {
  auto l = make_launch(GetParam() ^ 0xbeef);
  SimConfig cfg{kArch, 1};
  cfg.trace = true;
  const auto r = simulate(cfg, l.bin, l.programs);
  std::vector<sw::Tick> comp(r.cpes.size(), 0), dma(r.cpes.size(), 0),
      gload(r.cpes.size(), 0);
  for (const auto& iv : r.trace.events) {
    if (iv.lane >= r.cpes.size()) continue;
    const auto d = iv.end - iv.begin;
    if (iv.what == Activity::kCompute) comp[iv.lane] += d;
    if (iv.what == Activity::kDmaWait) dma[iv.lane] += d;
    if (iv.what == Activity::kGloadWait) gload[iv.lane] += d;
  }
  for (std::size_t i = 0; i < r.cpes.size(); ++i) {
    EXPECT_EQ(comp[i], r.cpes[i].comp);
    EXPECT_EQ(dma[i], r.cpes[i].dma_wait);
    EXPECT_EQ(gload[i], r.cpes[i].gload_wait);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace swperf::sim
