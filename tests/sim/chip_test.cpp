// Whole-chip scenario layer: FIFO gang scheduling of concurrent jobs over
// shared cross-section memory (src/sim/chip.h), the swperf.chip_scenario.v1
// schema parser (src/pipeline/chip.h), and the determinism contract —
// fast/reference bit-identity, byte-stable JSON across repeated runs and
// across concurrent simulations, and a golden chip-result artifact pinned
// byte-for-byte.
//
// Refreshing the fixture after an intentional change:
//   SWPERF_REGEN_GOLDEN=1 ctest -R ChipGolden
// then review the fixture diff like any other code change.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "isa/block.h"
#include "mem/request.h"
#include "pipeline/chip.h"
#include "pipeline/session.h"
#include "serde/json.h"
#include "serde/serde.h"
#include "sim/chip.h"
#include "sim/program.h"
#include "sw/error.h"
#include "sw/rng.h"

namespace swperf::sim {
namespace {

/// A small job: every CPE runs compute interleaved with blocking DMA, so
/// concurrent jobs contend on the shared controllers.
ChipJob make_job(const std::string& name, std::uint32_t cgs,
                 std::size_t cpes, std::uint64_t seed) {
  sw::Rng rng(seed);
  ChipJob job;
  job.name = name;
  job.core_groups = cgs;
  isa::BlockBuilder b(name + "_body");
  const auto x = b.reg();
  const int n_ops = 2 + static_cast<int>(rng.next_below(6));
  for (int i = 0; i < n_ops; ++i) b.fmul(x, x);
  job.binary.add_block(std::move(b).build());
  job.programs.resize(cpes);
  std::uint64_t c = 0;
  for (auto& p : job.programs) {
    p.delay(17 * (c % 4) + rng.next_below(150));
    const int chunks = 1 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < chunks; ++i) {
      p.dma(mem::DmaRequest::contiguous(256 * (4 + rng.next_below(24))));
      p.compute(0, 4 + rng.next_below(24));
    }
    p.barrier();
    ++c;
  }
  return job;
}

/// Four jobs on a four-CG chip: two fit at tick 0, the wide job must wait
/// for frees, the tail job queues behind it (FIFO — no skipping).
ChipScenario make_scenario(bool trace) {
  ChipScenario s;
  s.core_groups = 4;
  s.trace = trace;
  s.jobs.push_back(make_job("alpha", 2, 48, 101));
  s.jobs.push_back(make_job("beta", 2, 32, 202));
  s.jobs.push_back(make_job("gamma", 3, 40, 303));
  s.jobs.push_back(make_job("delta", 1, 16, 404));
  return s;
}

void expect_identical_but_counters(const ChipResult& fast,
                                   const ChipResult& ref) {
  EXPECT_EQ(fast.sim.total_ticks, ref.sim.total_ticks);
  EXPECT_EQ(fast.sim.transactions, ref.sim.transactions);
  EXPECT_EQ(fast.sim.mem_busy_ticks, ref.sim.mem_busy_ticks);
  EXPECT_EQ(fast.sim.mem_idle_ticks, ref.sim.mem_idle_ticks);
  ASSERT_EQ(fast.sim.cpes.size(), ref.sim.cpes.size());
  for (std::size_t i = 0; i < fast.sim.cpes.size(); ++i) {
    EXPECT_EQ(fast.sim.cpes[i].finish, ref.sim.cpes[i].finish) << "cpe " << i;
    EXPECT_EQ(fast.sim.cpes[i].comp, ref.sim.cpes[i].comp) << "cpe " << i;
    EXPECT_EQ(fast.sim.cpes[i].dma_wait, ref.sim.cpes[i].dma_wait)
        << "cpe " << i;
    EXPECT_EQ(fast.sim.cpes[i].barrier_wait, ref.sim.cpes[i].barrier_wait)
        << "cpe " << i;
  }
  ASSERT_EQ(fast.sim.trace.events.size(), ref.sim.trace.events.size());
  for (std::size_t i = 0; i < fast.sim.trace.events.size(); ++i) {
    const TraceEvent& a = fast.sim.trace.events[i];
    const TraceEvent& b = ref.sim.trace.events[i];
    EXPECT_EQ(a.lane, b.lane) << "event " << i;
    EXPECT_EQ(a.what, b.what) << "event " << i;
    EXPECT_EQ(a.begin, b.begin) << "event " << i;
    EXPECT_EQ(a.end, b.end) << "event " << i;
    EXPECT_EQ(a.req, b.req) << "event " << i;
    EXPECT_EQ(a.pred, b.pred) << "event " << i;
  }
  ASSERT_EQ(fast.jobs.size(), ref.jobs.size());
  for (std::size_t j = 0; j < fast.jobs.size(); ++j) {
    EXPECT_EQ(fast.jobs[j].name, ref.jobs[j].name);
    EXPECT_EQ(fast.jobs[j].core_groups, ref.jobs[j].core_groups);
    EXPECT_EQ(fast.jobs[j].cpes, ref.jobs[j].cpes);
    EXPECT_EQ(fast.jobs[j].launch_ticks, ref.jobs[j].launch_ticks)
        << "job " << fast.jobs[j].name;
    EXPECT_EQ(fast.jobs[j].finish_ticks, ref.jobs[j].finish_ticks)
        << "job " << fast.jobs[j].name;
  }
}

TEST(ChipScenarioTest, FastMatchesReferenceIncludingTraces) {
  const ChipScenario s = make_scenario(/*trace=*/true);
  const ChipResult fast = simulate_chip(s);
  const ChipResult ref = simulate_chip_reference(s);
  expect_identical_but_counters(fast, ref);
  EXPECT_LE(fast.sim.counters.events_popped, ref.sim.counters.events_popped);
}

TEST(ChipScenarioTest, RepeatedRunsAreByteIdentical) {
  const ChipScenario s = make_scenario(/*trace=*/false);
  const std::string first = serde::to_json(simulate_chip(s)).dump();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(serde::to_json(simulate_chip(s)).dump(), first) << "run " << i;
  }
}

TEST(ChipScenarioTest, FifoGangSchedulerLaunchesOnFrees) {
  // Two-CG chip, jobs A(1), B(2), C(1): A launches at tick 0; B does not
  // fit beside it and launches exactly when A's slots free; C queues
  // behind B (FIFO never skips the head) and launches at B's finish even
  // though it would have fit beside A the whole time.
  ChipScenario s;
  s.core_groups = 2;
  s.jobs.push_back(make_job("a", 1, 12, 11));
  s.jobs.push_back(make_job("b", 2, 24, 22));
  s.jobs.push_back(make_job("c", 1, 12, 33));
  const ChipResult r = simulate_chip(s);
  ASSERT_EQ(r.jobs.size(), 3u);
  const ChipJobResult& a = r.jobs[0];
  const ChipJobResult& b = r.jobs[1];
  const ChipJobResult& c = r.jobs[2];
  EXPECT_EQ(a.launch_ticks, 0u);
  EXPECT_EQ(b.launch_ticks, a.finish_ticks);
  EXPECT_EQ(c.launch_ticks, b.finish_ticks);
  for (const auto& j : r.jobs) {
    EXPECT_GT(j.finish_ticks, j.launch_ticks) << j.name;
    EXPECT_GT(j.cpes, 0u) << j.name;
  }
  EXPECT_EQ(r.sim.total_ticks, c.finish_ticks);
}

TEST(ChipScenarioTest, WideJobWaitsForEnoughFreeSlots) {
  const ChipScenario s = make_scenario(/*trace=*/false);
  const ChipResult r = simulate_chip(s);
  ASSERT_EQ(r.jobs.size(), 4u);
  // alpha(2) + beta(2) fill the chip at tick 0; gamma(3) must wait for
  // both of the first frees that add up to >= 3, delta(1) rides behind.
  EXPECT_EQ(r.jobs[0].launch_ticks, 0u);
  EXPECT_EQ(r.jobs[1].launch_ticks, 0u);
  EXPECT_GT(r.jobs[2].launch_ticks, 0u);
  EXPECT_GE(r.jobs[3].launch_ticks, r.jobs[2].launch_ticks);
}

// Re-entrancy: concurrent simulate_chip() calls on the same scenario are
// independent and deterministic (runs under the tsan preset via the
// `concurrency` label).
TEST(ChipScenarioTest, ConcurrentSimulationsAgree) {
  const ChipScenario s = make_scenario(/*trace=*/true);
  const std::string expected = serde::to_json(simulate_chip(s)).dump();
  std::vector<std::string> got(4);
  {
    std::vector<std::thread> workers;
    workers.reserve(got.size());
    for (auto& out : got) {
      workers.emplace_back(
          [&s, &out] { out = serde::to_json(simulate_chip(s)).dump(); });
    }
    for (auto& w : workers) w.join();
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected) << "thread " << i;
  }
}

// ---- swperf.chip_scenario.v1 schema parser ---------------------------------

serde::Json parse_json(const std::string& text) {
  const auto r = serde::Json::parse(text);
  EXPECT_TRUE(r.ok) << r.error;
  return r.value;
}

TEST(ChipScenarioSchema, ParsesNamedJobsWithDefaults) {
  const auto spec = pipeline::chip_scenario_spec_from_json(parse_json(
      R"({"jobs":[{"kernel":"vecadd","scale":"small"},)"
      R"({"name":"hs","kernel":"hotspot","scale":"small","core_groups":2}]})"));
  EXPECT_EQ(spec.core_groups, 4u);
  EXPECT_FALSE(spec.trace);
  ASSERT_EQ(spec.jobs.size(), 2u);
  EXPECT_EQ(spec.jobs[0].name, "vecadd");  // defaults to the kernel name
  EXPECT_EQ(spec.jobs[0].core_groups, 0u);  // 0 = take the lowering's demand
  EXPECT_EQ(spec.jobs[1].name, "hs");
  EXPECT_EQ(spec.jobs[1].core_groups, 2u);
}

TEST(ChipScenarioSchema, RejectsMalformedScenarios) {
  EXPECT_THROW(pipeline::chip_scenario_spec_from_json(
                   parse_json(R"({"jobs":[]})")),
               sw::Error);
  EXPECT_THROW(pipeline::chip_scenario_spec_from_json(
                   parse_json(R"({"jobs":[{"scale":"small"}]})")),
               sw::Error) << "job without a kernel";
  EXPECT_THROW(pipeline::chip_scenario_spec_from_json(parse_json(
                   R"({"jobs":[{"kernel":"vecadd","scale":"huge"}]})")),
               sw::Error) << "unknown scale";
  EXPECT_THROW(pipeline::chip_scenario_spec_from_json(parse_json(
                   R"({"bogus":1,"jobs":[{"kernel":"vecadd"}]})")),
               sw::Error) << "unknown scenario field";
  EXPECT_THROW(pipeline::chip_scenario_spec_from_json(parse_json(
                   R"({"jobs":[{"kernel":"vecadd","core_groups":0}]})")),
               sw::Error) << "zero CG reservation";
}

// ---- Golden chip-result artifact -------------------------------------------

/// The scenario the fixture pins: exactly what a user would put in a
/// --chip file — four Table II kernels (tuned small-scale launches)
/// gang-scheduled over the chip's four CGs.
const char kGoldenScenario[] =
    R"({"core_groups":4,"jobs":[)"
    R"({"name":"va0","kernel":"vecadd","scale":"small"},)"
    R"({"name":"va1","kernel":"vecadd","scale":"small"},)"
    R"({"kernel":"hotspot","scale":"small"},)"
    R"({"kernel":"pathfinder","scale":"small"}]})";

std::string golden_path() {
  return std::string(SWPERF_CHIP_GOLDEN_DIR) + "/chip_scenario.json";
}

/// Exactly what `swperf simulate --chip <file> --json` prints for
/// kGoldenScenario.
std::string current_artifact() {
  pipeline::Session session;
  const auto spec =
      pipeline::chip_scenario_spec_from_json(parse_json(kGoldenScenario));
  const auto scenario = pipeline::assemble_chip_scenario(spec, session);
  return serde::to_json(simulate_chip(scenario)).dump() + "\n";
}

TEST(ChipGolden, ArtifactPinned) {
  const std::string artifact = current_artifact();
  EXPECT_EQ(artifact, current_artifact());  // byte-stable within a process

  if (const char* regen = std::getenv("SWPERF_REGEN_GOLDEN");
      regen != nullptr && std::string(regen) == "1") {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << artifact;
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << golden_path()
                  << " (regenerate with SWPERF_REGEN_GOLDEN=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(artifact, buf.str())
      << "chip-scenario result drifted from the fixture";
}

TEST(ChipGolden, FixtureIsSerdeCanonicalAndWellFormed) {
  std::ifstream in(golden_path(), std::ios::binary);
  if (!in) GTEST_SKIP() << "fixture not present";
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto r = serde::Json::parse(line);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.dump(), line);

  EXPECT_EQ(r.value.at("schema").as_string(), "swperf.chip_result.v1");
  ASSERT_TRUE(r.value.at("jobs").is_array());
  ASSERT_EQ(r.value.at("jobs").size(), 4u);
  for (const auto& job : r.value.at("jobs").items()) {
    for (const char* field : {"name", "core_groups", "cpes", "launch_ticks",
                              "finish_ticks", "makespan_ticks",
                              "makespan_cycles"}) {
      EXPECT_TRUE(job.contains(field)) << field;
    }
  }
  const auto& sim = r.value.at("sim");
  for (const char* field : {"total_ticks", "transactions", "counters"}) {
    EXPECT_TRUE(sim.contains(field)) << field;
  }
  EXPECT_TRUE(sim.at("counters").contains("batched_grants"));
  EXPECT_TRUE(sim.at("counters").contains("train_arrivals_absorbed"));
}

}  // namespace
}  // namespace swperf::sim
