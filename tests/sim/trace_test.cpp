#include "sim/trace.h"

#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sw/error.h"

namespace swperf::sim {
namespace {

const sw::ArchParams kArch;

isa::BasicBlock flops_block(int n) {
  isa::BlockBuilder b("flops");
  const auto x = b.reg();
  for (int i = 0; i < n; ++i) b.fmul(x, x);
  return std::move(b).build();
}

SimResult traced_run(std::size_t n_cpes) {
  KernelBinary bin;
  bin.add_block(flops_block(8));
  std::vector<CpeProgram> ps(n_cpes);
  for (auto& p : ps) {
    for (int c = 0; c < 3; ++c) {
      p.dma(mem::DmaRequest::contiguous(4096));
      p.compute(0, 128);
      p.dma(mem::DmaRequest::contiguous(4096, mem::Direction::kWrite));
    }
  }
  SimConfig cfg{kArch, 1};
  cfg.trace = true;
  return simulate(cfg, bin, ps);
}

TEST(Trace, RecordsAllActivityClasses) {
  const auto r = traced_run(8);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.n_cpes, 8u);
  EXPECT_EQ(r.trace.n_controllers, 1u);
  bool has_comp = false, has_dma = false, has_mem = false;
  for (const auto& iv : r.trace.intervals) {
    EXPECT_LT(iv.begin, iv.end);
    EXPECT_LE(iv.end, r.total_ticks);
    has_comp |= iv.what == Activity::kCompute;
    has_dma |= iv.what == Activity::kDmaWait;
    has_mem |= iv.what == Activity::kMemService;
  }
  EXPECT_TRUE(has_comp);
  EXPECT_TRUE(has_dma);
  EXPECT_TRUE(has_mem);
  EXPECT_EQ(r.trace.span(), r.total_ticks);
}

TEST(Trace, IntervalDurationsMatchStats) {
  const auto r = traced_run(4);
  std::vector<sw::Tick> comp(4, 0), dma(4, 0);
  for (const auto& iv : r.trace.intervals) {
    if (iv.lane >= 4) continue;
    if (iv.what == Activity::kCompute) comp[iv.lane] += iv.end - iv.begin;
    if (iv.what == Activity::kDmaWait) dma[iv.lane] += iv.end - iv.begin;
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(comp[i], r.cpes[i].comp);
    EXPECT_EQ(dma[i], r.cpes[i].dma_wait);
  }
}

TEST(Trace, MemServiceCoversAllTransactions) {
  const auto r = traced_run(8);
  sw::Tick service = 0;
  for (const auto& iv : r.trace.intervals) {
    if (iv.what == Activity::kMemService) service += iv.end - iv.begin;
  }
  EXPECT_EQ(service, r.mem_busy_ticks);
}

TEST(Trace, OffByDefault) {
  KernelBinary bin;
  CpeProgram p;
  p.dma(mem::DmaRequest::contiguous(1024));
  const auto r = simulate(SimConfig{kArch, 1}, bin, {p});
  EXPECT_TRUE(r.trace.empty());
}

TEST(Timeline, RendersLanesAndGlyphs) {
  const auto r = traced_run(4);
  const auto s = render_timeline(r.trace, 60);
  EXPECT_NE(s.find("cpe0"), std::string::npos);
  EXPECT_NE(s.find("cpe3"), std::string::npos);
  EXPECT_NE(s.find("mem0"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);  // compute
  EXPECT_NE(s.find('D'), std::string::npos);  // dma wait
  EXPECT_NE(s.find('='), std::string::npos);  // memory busy
}

TEST(Timeline, ElidesExcessCpeRows) {
  const auto r = traced_run(32);
  const auto s = render_timeline(r.trace, 60, /*max_cpe_rows=*/8);
  EXPECT_NE(s.find("cpe7"), std::string::npos);
  EXPECT_EQ(s.find("cpe8 "), std::string::npos);
  EXPECT_NE(s.find("24 more CPEs"), std::string::npos);
}

TEST(Timeline, EmptyTraceHandled) {
  Trace t;
  EXPECT_EQ(render_timeline(t), "(empty trace)\n");
  EXPECT_THROW(render_timeline(t, 2), sw::Error);
}

}  // namespace
}  // namespace swperf::sim
