#include "sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/machine.h"
#include "sw/error.h"

namespace swperf::sim {
namespace {

const sw::ArchParams kArch;

isa::BasicBlock flops_block(int n) {
  isa::BlockBuilder b("flops");
  const auto x = b.reg();
  for (int i = 0; i < n; ++i) b.fmul(x, x);
  return std::move(b).build();
}

SimResult traced_run(std::size_t n_cpes) {
  KernelBinary bin;
  bin.add_block(flops_block(8));
  std::vector<CpeProgram> ps(n_cpes);
  for (auto& p : ps) {
    for (int c = 0; c < 3; ++c) {
      p.dma(mem::DmaRequest::contiguous(4096));
      p.compute(0, 128);
      p.dma(mem::DmaRequest::contiguous(4096, mem::Direction::kWrite));
    }
  }
  SimConfig cfg{kArch, 1};
  cfg.trace = true;
  return simulate(cfg, bin, ps);
}

TEST(Trace, RecordsAllActivityClasses) {
  const auto r = traced_run(8);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.n_cpes, 8u);
  EXPECT_EQ(r.trace.n_controllers, 1u);
  bool has_comp = false, has_dma = false, has_mem = false, has_issue = false;
  for (const auto& e : r.trace.events) {
    if (e.what == Activity::kDmaIssue) {
      EXPECT_EQ(e.begin, e.end);  // issue points are zero-duration
    } else {
      EXPECT_LT(e.begin, e.end);
    }
    EXPECT_LE(e.end, r.total_ticks);
    has_comp |= e.what == Activity::kCompute;
    has_dma |= e.what == Activity::kDmaWait;
    has_mem |= e.what == Activity::kMemService;
    has_issue |= e.what == Activity::kDmaIssue;
  }
  EXPECT_TRUE(has_comp);
  EXPECT_TRUE(has_dma);
  EXPECT_TRUE(has_mem);
  EXPECT_TRUE(has_issue);
  EXPECT_EQ(r.trace.span(), r.total_ticks);
}

TEST(Trace, EventDurationsMatchStats) {
  const auto r = traced_run(4);
  std::vector<sw::Tick> comp(4, 0), dma(4, 0);
  for (const auto& e : r.trace.events) {
    if (e.lane >= 4) continue;
    if (e.what == Activity::kCompute) comp[e.lane] += e.end - e.begin;
    if (e.what == Activity::kDmaWait) dma[e.lane] += e.end - e.begin;
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(comp[i], r.cpes[i].comp);
    EXPECT_EQ(dma[i], r.cpes[i].dma_wait);
    EXPECT_EQ(r.trace.lane_busy(static_cast<std::uint32_t>(i)), comp[i]);
  }
}

TEST(Trace, MemServiceCoversAllTransactions) {
  const auto r = traced_run(8);
  sw::Tick service = 0;
  for (const auto& e : r.trace.events) {
    if (e.what == Activity::kMemService) service += e.end - e.begin;
  }
  EXPECT_EQ(service, r.mem_busy_ticks);
  EXPECT_EQ(r.trace.lane_busy(r.trace.n_cpes), r.mem_busy_ticks);
}

// The causal chain the explain DAG walks: every DMA event names its
// request, every service links back through the request's chain to its
// issue point, every wait links to the request's last service, and all
// links point strictly backward (an event's pred has a smaller id).
TEST(Trace, CausalLinksAreWellFormed) {
  const auto r = traced_run(4);
  const auto& ev = r.trace.events;
  std::uint64_t issues = 0;
  for (std::size_t i = 0; i < ev.size(); ++i) {
    const TraceEvent& e = ev[i];
    if (e.pred != kNoPred) {
      ASSERT_LT(e.pred, i) << "pred must point backward";
    }
    switch (e.what) {
      case Activity::kDmaIssue:
        ++issues;
        EXPECT_NE(e.req, kNoReq);
        EXPECT_NE(e.op, kNoOp);
        EXPECT_NE(e.handle, kNoHandle);
        break;
      case Activity::kMemService: {
        EXPECT_NE(e.req, kNoReq);
        ASSERT_NE(e.pred, kNoPred) << "service must chain to its issue";
        const TraceEvent& p = ev[e.pred];
        EXPECT_EQ(p.req, e.req) << "service chains within one request";
        EXPECT_TRUE(p.what == Activity::kDmaIssue ||
                    p.what == Activity::kMemService);
        break;
      }
      case Activity::kDmaWait: {
        EXPECT_NE(e.req, kNoReq);
        ASSERT_NE(e.pred, kNoPred) << "wait must link to the last service";
        const TraceEvent& p = ev[e.pred];
        EXPECT_EQ(p.what, Activity::kMemService);
        EXPECT_EQ(p.req, e.req);
        break;
      }
      default:
        break;
    }
  }
  // Every DMA request with traffic has exactly one issue point; here all
  // 4 CPEs issue 6 requests each.
  EXPECT_EQ(issues, 24u);
  EXPECT_EQ(issues, r.counters.dma_trains);
}

TEST(Trace, OffByDefault) {
  KernelBinary bin;
  CpeProgram p;
  p.dma(mem::DmaRequest::contiguous(1024));
  const auto r = simulate(SimConfig{kArch, 1}, bin, {p});
  EXPECT_TRUE(r.trace.empty());
}

TEST(Timeline, RendersLanesAndGlyphs) {
  const auto r = traced_run(4);
  const auto s = render_timeline(r.trace, 60);
  EXPECT_NE(s.find("cpe0"), std::string::npos);
  EXPECT_NE(s.find("cpe3"), std::string::npos);
  EXPECT_NE(s.find("mem0"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);  // compute
  EXPECT_NE(s.find('D'), std::string::npos);  // dma wait
  EXPECT_NE(s.find('='), std::string::npos);  // memory busy
}

TEST(Timeline, HeaderReportsSpanAndRowsReportUtilization) {
  const auto r = traced_run(4);
  const auto s = render_timeline(r.trace, 60);
  std::ostringstream want;
  want << "timeline: span " << sw::ticks_to_cycles(r.trace.span())
       << " cycles (" << r.trace.span() << " ticks)";
  EXPECT_EQ(s.find(want.str()), 0u) << s;
  EXPECT_NE(s.find("rows end with lane busy%"), std::string::npos);
  // Every lane row (not the two header lines) ends with "<pct>%".
  std::istringstream lines(s);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("cpe", 0) != 0 && line.rfind("mem", 0) != 0) continue;
    ++rows;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '%') << line;
  }
  EXPECT_EQ(rows, 5u);  // 4 CPE lanes + 1 controller
  // The controller's percentage is the exact busy fraction, rounded.
  const auto pct = static_cast<unsigned>(
      (200 * r.trace.lane_busy(4) / r.trace.span() + 1) / 2);
  std::ostringstream mem_row;
  mem_row << " " << pct << "%";
  EXPECT_NE(s.find(mem_row.str()), std::string::npos) << s;
}

TEST(Timeline, ElidesExcessCpeRows) {
  const auto r = traced_run(32);
  const auto s = render_timeline(r.trace, 60, /*max_cpe_rows=*/8);
  EXPECT_NE(s.find("cpe7"), std::string::npos);
  EXPECT_EQ(s.find("cpe8 "), std::string::npos);
  EXPECT_NE(s.find("24 more CPEs"), std::string::npos);
  // The elision note still renders between the CPE block and mem lanes.
  EXPECT_LT(s.find("24 more CPEs"), s.find("mem0"));
}

TEST(Timeline, CpeRowCapZeroElidesAllCpes) {
  const auto r = traced_run(4);
  const auto s = render_timeline(r.trace, 60, /*max_cpe_rows=*/0);
  EXPECT_EQ(s.find("cpe0"), std::string::npos);
  EXPECT_NE(s.find("4 more CPEs"), std::string::npos);
  EXPECT_NE(s.find("mem0"), std::string::npos);
}

TEST(Timeline, EmptyTraceHandled) {
  Trace t;
  EXPECT_EQ(render_timeline(t), "(empty trace)\n");
  EXPECT_THROW(render_timeline(t, 2), sw::Error);
  // A trace holding only zero-duration issue points has no span either.
  Trace issue_only;
  issue_only.n_cpes = 1;
  issue_only.events.push_back(
      TraceEvent{0, Activity::kDmaIssue, 0, 0, 0, 0, 0, kNoPred});
  EXPECT_EQ(render_timeline(issue_only), "(empty trace)\n");
}

}  // namespace
}  // namespace swperf::sim
