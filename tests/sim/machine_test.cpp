#include "sim/machine.h"

#include <gtest/gtest.h>

#include "isa/schedule.h"
#include "sw/error.h"

namespace swperf::sim {
namespace {

const sw::ArchParams kArch;

isa::BasicBlock flops_block(int n) {
  isa::BlockBuilder b("flops");
  const auto x = b.reg();
  for (int i = 0; i < n; ++i) b.fmul(x, x);
  return std::move(b).build();
}

SimConfig cfg1() { return SimConfig{kArch, 1}; }

TEST(Machine, ComputeOnlyMatchesStaticSchedule) {
  KernelBinary bin;
  const auto blk = flops_block(10);
  isa::LoopSchedule ls(blk, kArch);
  bin.add_block(blk);
  CpeProgram p;
  p.compute(0, 1000);
  const auto r = simulate(cfg1(), bin, {p});
  EXPECT_EQ(r.total_ticks, sw::cycles_to_ticks(ls.cycles(1000)));
  EXPECT_EQ(r.cpes[0].comp, r.total_ticks);
  EXPECT_EQ(r.transactions, 0u);
}

TEST(Machine, BlockingDmaUncontendedLatency) {
  KernelBinary bin;
  CpeProgram p;
  p.dma(mem::DmaRequest::contiguous(1024));  // 4 transactions
  const auto r = simulate(cfg1(), bin, {p});
  // Eq. 11: 220 + 3*50 cycles.
  EXPECT_EQ(r.total_ticks, sw::cycles_to_ticks(220 + 3 * 50));
  EXPECT_EQ(r.cpes[0].dma_wait, r.total_ticks);
  EXPECT_EQ(r.transactions, 4u);
}

TEST(Machine, SixtyFourCpeDmaContentionIsBandwidthBound) {
  KernelBinary bin;
  std::vector<CpeProgram> ps(64);
  for (auto& p : ps) p.dma(mem::DmaRequest::contiguous(4096));  // 16 trans
  const auto r = simulate(cfg1(), bin, ps);
  // 1024 transactions at 11.6 cycles each dominate.
  const double total = r.total_cycles();
  EXPECT_GT(total, 1024 * 11.6);
  EXPECT_LT(total, 1024 * 11.6 * 1.15 + 220);
  EXPECT_EQ(r.transactions, 1024u);
}

TEST(Machine, AsyncDmaOverlapsCompute) {
  KernelBinary bin;
  bin.add_block(flops_block(10));
  isa::LoopSchedule ls(flops_block(10), kArch);
  const std::uint64_t comp_ticks = sw::cycles_to_ticks(ls.cycles(500));

  CpeProgram serial;
  serial.dma(mem::DmaRequest::contiguous(8192));
  serial.compute(0, 500);
  const auto rs = simulate(cfg1(), bin, {serial});

  CpeProgram overlapped;
  overlapped.dma(mem::DmaRequest::contiguous(8192), /*handle=*/0);
  overlapped.compute(0, 500);
  overlapped.dma_wait(0);
  const auto ro = simulate(cfg1(), bin, {overlapped});

  EXPECT_LT(ro.total_ticks, rs.total_ticks);
  // Full overlap: total is max(dma, comp), not the sum.
  const std::uint64_t dma_ticks = rs.total_ticks - comp_ticks;
  EXPECT_NEAR(static_cast<double>(ro.total_ticks),
              static_cast<double>(std::max(dma_ticks, comp_ticks)),
              static_cast<double>(sw::cycles_to_ticks(5)));
}

TEST(Machine, DmaWaitOnCompletedRequestIsFree) {
  KernelBinary bin;
  bin.add_block(flops_block(10));
  CpeProgram p;
  p.dma(mem::DmaRequest::contiguous(256), 0);
  p.compute(0, 10000);  // far longer than the DMA
  p.dma_wait(0);
  const auto r = simulate(cfg1(), bin, {p});
  EXPECT_EQ(r.cpes[0].dma_wait, 0u);
}

TEST(Machine, GloadLoopUncontended) {
  KernelBinary bin;
  CpeProgram p;
  GloadLoopOp g;
  g.count = 10;
  g.bytes = 8;
  g.compute_ticks_per_elem = 100;
  p.gload_loop(g);
  const auto r = simulate(cfg1(), bin, {p});
  // Serial: each gload takes L_base, then its compute.
  EXPECT_EQ(r.total_ticks, 10 * (sw::cycles_to_ticks(220) + 100));
  EXPECT_EQ(r.cpes[0].gload_requests, 10u);
  EXPECT_EQ(r.cpes[0].comp, 1000u);
  EXPECT_EQ(r.transactions, 10u);
}

TEST(Machine, GloadRejectsOversizedRequests) {
  KernelBinary bin;
  CpeProgram p;
  GloadLoopOp g;
  g.count = 1;
  g.bytes = 64;  // > 32-byte gload limit
  p.gload_loop(g);
  EXPECT_THROW(simulate(cfg1(), bin, {p}), sw::Error);
}

TEST(Machine, BarrierSynchronisesCpes) {
  KernelBinary bin;
  bin.add_block(flops_block(10));
  std::vector<CpeProgram> ps(4);
  for (std::size_t i = 0; i < 4; ++i) {
    ps[i].compute(0, 100 * (i + 1));  // staggered arrival
    ps[i].barrier();
    ps[i].compute(0, 10);
  }
  const auto r = simulate(cfg1(), bin, ps);
  // Everyone leaves the barrier at the slowest CPE's arrival time.
  isa::LoopSchedule ls(flops_block(10), kArch);
  const sw::Tick slowest = sw::cycles_to_ticks(ls.cycles(400));
  const sw::Tick tail = sw::cycles_to_ticks(ls.cycles(10));
  for (const auto& c : r.cpes) {
    EXPECT_EQ(c.finish, slowest + tail);
  }
  EXPECT_EQ(r.cpes[0].barrier_wait,
            slowest - sw::cycles_to_ticks(ls.cycles(100)));
  EXPECT_EQ(r.cpes[3].barrier_wait, 0u);
}

TEST(Machine, BarrierMismatchDeadlocksWithDiagnostic) {
  KernelBinary bin;
  bin.add_block(flops_block(2));
  std::vector<CpeProgram> ps(2);
  ps[0].barrier();
  ps[1].compute(0, 1);  // never reaches a barrier
  EXPECT_THROW(simulate(cfg1(), bin, ps), sw::Error);
}

TEST(Machine, DoubleIssueOnBusyHandleRejected) {
  KernelBinary bin;
  CpeProgram p;
  p.dma(mem::DmaRequest::contiguous(65536), 0);
  p.dma(mem::DmaRequest::contiguous(65536), 0);  // handle still in flight
  EXPECT_THROW(simulate(cfg1(), bin, {p}), sw::Error);
}

TEST(Machine, Deterministic) {
  KernelBinary bin;
  bin.add_block(flops_block(6));
  std::vector<CpeProgram> ps(64);
  for (std::size_t i = 0; i < 64; ++i) {
    for (int c = 0; c < 4; ++c) {
      ps[i].dma(mem::DmaRequest::contiguous(2048 + 256 * (i % 3)));
      ps[i].compute(0, 64);
      ps[i].dma(mem::DmaRequest::contiguous(1024, mem::Direction::kWrite));
    }
  }
  const auto a = simulate(cfg1(), bin, ps);
  const auto b = simulate(cfg1(), bin, ps);
  EXPECT_EQ(a.total_ticks, b.total_ticks);
  for (std::size_t i = 0; i < a.cpes.size(); ++i) {
    EXPECT_EQ(a.cpes[i].finish, b.cpes[i].finish);
    EXPECT_EQ(a.cpes[i].dma_wait, b.cpes[i].dma_wait);
  }
}

TEST(Machine, MultiCgScalesBandwidth) {
  KernelBinary bin;
  auto make = [&](std::size_t n) {
    std::vector<CpeProgram> ps(n);
    for (auto& p : ps) {
      for (int c = 0; c < 8; ++c) p.dma(mem::DmaRequest::contiguous(8192));
    }
    return ps;
  };
  const auto r1 = simulate(SimConfig{kArch, 1}, bin, make(64));
  const auto r2 = simulate(SimConfig{kArch, 2}, bin, make(128));
  // Twice the CPEs and twice the traffic on twice the controllers: total
  // time stays within cross-section efficiency of the single-CG run.
  EXPECT_LT(r2.total_cycles(), r1.total_cycles() * 1.15);
  EXPECT_GT(r2.total_cycles(), r1.total_cycles() * 0.95);
}

TEST(Machine, RejectsTooManyPrograms) {
  KernelBinary bin;
  std::vector<CpeProgram> ps(65);
  for (auto& p : ps) p.delay(1);
  EXPECT_THROW(simulate(SimConfig{kArch, 1}, bin, ps), sw::Error);
  EXPECT_NO_THROW(simulate(SimConfig{kArch, 2}, bin, ps));
}

TEST(Machine, DelayOpAdvancesTime) {
  KernelBinary bin;
  CpeProgram p;
  p.delay(12345);
  const auto r = simulate(cfg1(), bin, {p});
  EXPECT_EQ(r.total_ticks, 12345u);
}

TEST(Machine, StatsBreakdownConsistent) {
  KernelBinary bin;
  bin.add_block(flops_block(8));
  CpeProgram p;
  p.dma(mem::DmaRequest::contiguous(4096));
  p.compute(0, 200);
  p.dma(mem::DmaRequest::contiguous(4096, mem::Direction::kWrite));
  const auto r = simulate(cfg1(), bin, {p});
  const auto& c = r.cpes[0];
  // A fully serial program's finish time decomposes exactly.
  EXPECT_EQ(c.finish, c.comp + c.dma_wait + c.gload_wait + c.barrier_wait);
  EXPECT_EQ(c.dma_requests, 2u);
}

}  // namespace
}  // namespace swperf::sim
