// Simulator re-entrancy: sim::simulate builds all of its state (event
// queue, controllers, CPE records) per call, so any number of concurrent
// simulations — same kernel or different kernels — must be race-free and
// return the seed-identical cycle counts pinned by
// tests/regression/golden_test.cpp.  Runs under the tsan preset via the
// `concurrency` ctest label.
#include "sim/machine.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "kernels/suite.h"
#include "sw/pool.h"
#include "swacc/lower.h"

namespace swperf::sim {
namespace {

const sw::ArchParams kArch = sw::ArchParams::sw26010();

/// Golden fixture (tuned preset, Scale::kSmall) shared with
/// tests/regression/golden_test.cpp — re-baseline both together.
constexpr std::uint64_t kVecaddGoldenTicks = 714788ull;

TEST(ConcurrentMachine, SameKernelFromManyThreads) {
  const auto spec = kernels::make("vecadd", kernels::Scale::kSmall);
  const auto lk = swacc::lower(spec.desc, spec.tuned, kArch);

  constexpr int kThreads = 8;
  std::vector<std::uint64_t> ticks(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread shares the immutable lowered inputs and runs its own
      // engine instance.
      ticks[static_cast<std::size_t>(t)] =
          simulate(lk.sim_config, lk.binary, lk.programs).total_ticks;
    });
  }
  for (auto& t : threads) t.join();
  for (const std::uint64_t got : ticks) {
    EXPECT_EQ(got, kVecaddGoldenTicks);
  }
}

TEST(ConcurrentMachine, ConcurrentLowerAndSimulateAcrossKernels) {
  // The tuner's actual per-worker pipeline: lower + simulate, different
  // variants in flight at once. Every concurrent result must equal the
  // serial result for its kernel.
  const auto names = kernels::table2_kernels();
  std::vector<std::uint64_t> serial(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto spec = kernels::make(names[i], kernels::Scale::kSmall);
    const auto lk = swacc::lower(spec.desc, spec.tuned, kArch);
    serial[i] = simulate(lk.sim_config, lk.binary, lk.programs).total_ticks;
  }

  constexpr std::uint64_t kReps = 4;
  const std::uint64_t n = names.size() * kReps;
  std::vector<std::uint64_t> concurrent(n, 0);
  sw::parallel_for(n, 8, [&](std::uint64_t i) {
    const auto& name = names[i % names.size()];
    const auto spec = kernels::make(name, kernels::Scale::kSmall);
    const auto lk = swacc::lower(spec.desc, spec.tuned, kArch);
    concurrent[i] =
        simulate(lk.sim_config, lk.binary, lk.programs).total_ticks;
  });
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(concurrent[i], serial[i % names.size()])
        << names[i % names.size()];
  }
}

TEST(ConcurrentMachine, TracingRunsAreIndependent) {
  // SimConfig::trace allocates per-engine trace buffers; concurrent traced
  // runs must not interleave records.
  const auto spec = kernels::make("hotspot", kernels::Scale::kSmall);
  auto lk = swacc::lower(spec.desc, spec.tuned, kArch);
  lk.sim_config.trace = true;

  const auto reference = simulate(lk.sim_config, lk.binary, lk.programs);
  constexpr std::uint64_t kRuns = 6;
  std::vector<std::size_t> events(kRuns);
  std::vector<std::uint64_t> ticks(kRuns);
  sw::parallel_for(kRuns, 6, [&](std::uint64_t i) {
    const auto r = simulate(lk.sim_config, lk.binary, lk.programs);
    events[i] = r.trace.events.size();
    ticks[i] = r.total_ticks;
  });
  for (std::uint64_t i = 0; i < kRuns; ++i) {
    EXPECT_EQ(ticks[i], reference.total_ticks);
    EXPECT_EQ(events[i], reference.trace.events.size());
  }
}

}  // namespace
}  // namespace swperf::sim
