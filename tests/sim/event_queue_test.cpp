// The bucketed event queue must be observably identical to the reference
// heap: same pop sequence for any legal push/pop schedule, and a
// side-effect-free peek.  Schedules are random but respect the simulator's
// contract (pushes never go backwards in time), with tick offsets spread
// across three regimes — same-tick, near horizon, and far beyond the
// wheel's span so the overflow heap and its migration paths are exercised.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "sim/event_queue.h"
#include "sw/rng.h"

namespace swperf::sim {
namespace {

struct TestItem {
  sw::Tick tick = 0;
  std::uint64_t seq = 0;

  bool operator==(const TestItem&) const = default;
};

sw::Tick random_offset(sw::Rng& rng) {
  switch (rng.next_below(10)) {
    case 0:
      return 0;  // same tick as "now"
    case 1:
    case 2:
      return rng.next_below(16);  // dense near ticks
    case 3:
      return 5000 + rng.next_below(200000);  // far beyond the wheel
    default:
      return rng.next_below(4000);  // within one wheel rotation
  }
}

class EventQueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueProperty, PopSequencesMatchReferenceHeap) {
  sw::Rng rng(GetParam());
  HeapEventQueue<TestItem> heap;
  BucketEventQueue<TestItem> bucket;

  sw::Tick now = 0;       // tick of the most recent pop
  std::uint64_t seq = 0;  // strictly increasing insertion counter
  sw::Tick last_tick = 0;
  std::uint64_t last_seq = 0;
  bool popped_any = false;

  const int steps = 2000;
  for (int i = 0; i < steps; ++i) {
    const bool do_push = heap.empty() || rng.next_below(5) < 3;
    if (do_push) {
      const TestItem it{now + random_offset(rng), seq++};
      heap.push(it);
      bucket.push(it);
    } else {
      ASSERT_EQ(heap.size(), bucket.size());
      // peek agrees with the heap and has no observable side effect.
      const std::optional<sw::Tick> pk = bucket.peek_tick();
      ASSERT_EQ(pk, heap.peek_tick());
      ASSERT_EQ(bucket.peek_tick(), pk);

      const TestItem want = heap.pop();
      const TestItem got = bucket.pop();
      ASSERT_EQ(got, want) << "step " << i << ": heap popped (" << want.tick
                           << ", " << want.seq << "), bucket popped ("
                           << got.tick << ", " << got.seq << ")";
      // Pops come out in ascending (tick, seq).
      if (popped_any) {
        ASSERT_TRUE(got.tick > last_tick ||
                    (got.tick == last_tick && got.seq > last_seq));
      }
      popped_any = true;
      last_tick = got.tick;
      last_seq = got.seq;
      now = got.tick;
    }
  }

  // Drain: every remaining item must come out in the same order.
  while (!heap.empty()) {
    ASSERT_EQ(bucket.peek_tick(), heap.peek_tick());
    ASSERT_EQ(bucket.pop(), heap.pop());
  }
  EXPECT_TRUE(bucket.empty());
  EXPECT_EQ(bucket.peek_tick(), std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(EventQueue, SameTickPopsInSeqOrderAcrossInterleavedPushes) {
  BucketEventQueue<TestItem> q;
  // Pushes at one tick, interleaved with pops at that tick, must still
  // come out in seq order — the engine pushes new events at the tick it
  // is currently processing (e.g. a train's next leg at +0 offsets).
  q.push({100, 2});
  q.push({100, 0});
  EXPECT_EQ(q.pop(), (TestItem{100, 0}));
  q.push({100, 1});
  EXPECT_EQ(q.pop(), (TestItem{100, 1}));
  EXPECT_EQ(q.pop(), (TestItem{100, 2}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, JumpsAcrossEmptySpansAndMigratesOverflow) {
  BucketEventQueue<TestItem> q;
  q.push({0, 0});
  q.push({1'000'000, 1});  // far beyond the wheel: overflow
  EXPECT_EQ(q.pop(), (TestItem{0, 0}));
  EXPECT_EQ(q.peek_tick(), std::optional<sw::Tick>(1'000'000));
  // A near event pushed after the far one still pops first.
  q.push({7, 2});
  EXPECT_EQ(q.pop(), (TestItem{7, 2}));
  EXPECT_EQ(q.pop(), (TestItem{1'000'000, 1}));
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace swperf::sim
