// Integration tests of the memory/computation overlap phenomena the paper
// models in Section III-A and exploits in Section IV.
#include <gtest/gtest.h>

#include "isa/schedule.h"
#include "sim/machine.h"

namespace swperf::sim {
namespace {

const sw::ArchParams kArch;

isa::BasicBlock flops_block(int n) {
  isa::BlockBuilder b("flops");
  const auto x = b.reg();
  for (int i = 0; i < n; ++i) b.fmul(x, x);
  return std::move(b).build();
}

/// Chunked get-compute-put program over `chunks` chunks.
std::vector<CpeProgram> chunked(std::size_t n_cpes, int chunks,
                                std::uint64_t bytes, std::uint64_t iters,
                                bool double_buffer) {
  std::vector<CpeProgram> ps(n_cpes);
  for (auto& p : ps) {
    if (!double_buffer) {
      for (int c = 0; c < chunks; ++c) {
        p.dma(mem::DmaRequest::contiguous(bytes));
        p.compute(0, iters);
        p.dma(mem::DmaRequest::contiguous(bytes, mem::Direction::kWrite));
      }
    } else {
      p.dma(mem::DmaRequest::contiguous(bytes), 0);
      for (int c = 0; c < chunks; ++c) {
        p.dma_wait(c % 2);
        if (c + 1 < chunks) {
          p.dma(mem::DmaRequest::contiguous(bytes),
                (c + 1) % 2);
        }
        p.compute(0, iters);
        if (c >= 2) p.dma_wait(2 + c % 2);
        p.dma(mem::DmaRequest::contiguous(bytes, mem::Direction::kWrite),
              2 + c % 2);
      }
      p.dma_wait(2 + (chunks - 1) % 2);
      if (chunks >= 2) p.dma_wait(2 + (chunks - 2) % 2);
    }
  }
  return ps;
}

KernelBinary bin_with_flops(int n) {
  KernelBinary bin;
  bin.add_block(flops_block(n));
  return bin;
}

TEST(Overlap, CrossCpeStaggeringHidesCompute) {
  // 64 CPEs looping get-compute-put: computation of one CPE overlaps the
  // DMA of others, so total << serial sum.
  const auto bin = bin_with_flops(16);
  const auto ps = chunked(64, 8, 4096, 256, false);
  const auto r = simulate(SimConfig{kArch, 1}, bin, ps);

  double serial_one = 0;  // single CPE, no contention
  const auto r1 =
      simulate(SimConfig{kArch, 1}, bin, chunked(1, 8, 4096, 256, false));
  serial_one = r1.total_cycles();

  // Bandwidth floor: 64 CPEs x 8 chunks x 32 transactions x 2 directions.
  const double floor = 64 * 8 * 16 * 2 * 11.6;
  EXPECT_GT(r.total_cycles(), floor * 0.98);
  // Overlap: total is far less than 64 serialised CPEs, and less than
  // bandwidth + compute stacked end to end.
  const auto& c = r.cpes[0];
  EXPECT_LT(r.total_cycles(), floor + serial_one);
  EXPECT_GT(c.comp, 0u);
}

TEST(Overlap, SmallerGranularityNeverMuchWorse) {
  // Eq. 13: splitting the same traffic into more requests increases
  // overlap. Compare 4 chunks vs 16 chunks of proportionally smaller size.
  const auto bin = bin_with_flops(64);
  const auto coarse =
      simulate(SimConfig{kArch, 1}, bin, chunked(64, 4, 16384, 512, false));
  const auto fine =
      simulate(SimConfig{kArch, 1}, bin, chunked(64, 16, 4096, 128, false));
  EXPECT_LT(fine.total_cycles(), coarse.total_cycles() * 1.02);
}

TEST(Overlap, DoubleBufferNeverSlower) {
  const auto bin = bin_with_flops(64);
  for (const std::uint64_t iters : {64u, 256u, 1024u}) {
    const auto plain =
        simulate(SimConfig{kArch, 1}, bin, chunked(64, 8, 8192, iters, false));
    const auto db =
        simulate(SimConfig{kArch, 1}, bin, chunked(64, 8, 8192, iters, true));
    EXPECT_LE(db.total_cycles(), plain.total_cycles() * 1.005)
        << "iters=" << iters;
  }
}

TEST(Overlap, DoubleBufferBoundedByMemoryFloor) {
  // Even perfect prefetching cannot beat the bandwidth floor (Section
  // IV-2: the benefit is capped).
  const auto bin = bin_with_flops(16);
  const auto db =
      simulate(SimConfig{kArch, 1}, bin, chunked(64, 8, 8192, 64, true));
  const double floor = 64 * 8 * 32 * 2 * 11.6;
  EXPECT_GT(db.total_cycles(), floor * 0.98);
}

TEST(Overlap, MemoryIdleOnlyWhenComputeBound) {
  const auto bin = bin_with_flops(16);
  // Scenario 2 (memory-bound): no idle gaps between transactions.
  const auto mem_bound =
      simulate(SimConfig{kArch, 1}, bin, chunked(64, 8, 8192, 16, false));
  // Scenario 1 (compute-bound): memory idles while CPEs compute.
  const auto comp_bound =
      simulate(SimConfig{kArch, 1}, bin, chunked(64, 8, 512, 4096, false));
  const double idle_frac_mem =
      static_cast<double>(mem_bound.mem_idle_ticks) /
      static_cast<double>(mem_bound.total_ticks);
  const double idle_frac_comp =
      static_cast<double>(comp_bound.mem_idle_ticks) /
      static_cast<double>(comp_bound.total_ticks);
  EXPECT_LT(idle_frac_mem, 0.25);
  EXPECT_GT(idle_frac_comp, 0.5);
}

}  // namespace
}  // namespace swperf::sim
