// Bit-identity of the fast-path engine (DMA trains + bucketed queue +
// uncontended fast-forward) against the preserved reference engine.
//
// The contract (docs/PERF.md): simulate() and simulate_reference() agree
// on every SimResult field EXCEPT `counters` — the counters describe how
// each engine did the work, not what the simulated machine did.  The
// randomized cases sweep program mixes; the boundary cases pin the
// fast-forward guard to one tick on either side of the batch window.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "isa/block.h"
#include "mem/controller.h"
#include "mem/dma.h"
#include "mem/request.h"
#include "sim/machine.h"
#include "sim/program.h"
#include "sw/rng.h"
#include "sw/time.h"

namespace swperf::sim {
namespace {

const sw::ArchParams kArch;

void expect_identical_but_counters(const SimResult& fast,
                                   const SimResult& ref) {
  EXPECT_EQ(fast.total_ticks, ref.total_ticks);
  EXPECT_EQ(fast.transactions, ref.transactions);
  EXPECT_EQ(fast.mem_busy_ticks, ref.mem_busy_ticks);
  EXPECT_EQ(fast.mem_idle_ticks, ref.mem_idle_ticks);
  ASSERT_EQ(fast.cpes.size(), ref.cpes.size());
  for (std::size_t i = 0; i < fast.cpes.size(); ++i) {
    EXPECT_EQ(fast.cpes[i].finish, ref.cpes[i].finish) << "cpe " << i;
    EXPECT_EQ(fast.cpes[i].comp, ref.cpes[i].comp) << "cpe " << i;
    EXPECT_EQ(fast.cpes[i].dma_wait, ref.cpes[i].dma_wait) << "cpe " << i;
    EXPECT_EQ(fast.cpes[i].gload_wait, ref.cpes[i].gload_wait)
        << "cpe " << i;
    EXPECT_EQ(fast.cpes[i].barrier_wait, ref.cpes[i].barrier_wait)
        << "cpe " << i;
    EXPECT_EQ(fast.cpes[i].dma_requests, ref.cpes[i].dma_requests);
    EXPECT_EQ(fast.cpes[i].gload_requests, ref.cpes[i].gload_requests);
  }
  // The causal event streams must be bit-identical too — ids, request
  // seqs, and predecessor links, not just the rendered spans.
  ASSERT_EQ(fast.trace.events.size(), ref.trace.events.size());
  for (std::size_t i = 0; i < fast.trace.events.size(); ++i) {
    const TraceEvent& a = fast.trace.events[i];
    const TraceEvent& b = ref.trace.events[i];
    EXPECT_EQ(a.lane, b.lane) << "event " << i;
    EXPECT_EQ(a.what, b.what) << "event " << i;
    EXPECT_EQ(a.begin, b.begin) << "event " << i;
    EXPECT_EQ(a.end, b.end) << "event " << i;
    EXPECT_EQ(a.op, b.op) << "event " << i;
    EXPECT_EQ(a.handle, b.handle) << "event " << i;
    EXPECT_EQ(a.req, b.req) << "event " << i;
    EXPECT_EQ(a.pred, b.pred) << "event " << i;
  }
}

struct Launch {
  KernelBinary bin;
  std::vector<CpeProgram> programs;
};

/// Random well-formed mixes: blocking and async DMA (double-buffer
/// shape), compute, gload loops, barriers, delays — every op kind the
/// fast paths must not perturb.
Launch make_launch(std::uint64_t seed) {
  sw::Rng rng(seed);
  Launch l;
  isa::BlockBuilder b("body");
  const auto x = b.reg();
  const int n_ops = 2 + static_cast<int>(rng.next_below(10));
  for (int i = 0; i < n_ops; ++i) b.fmul(x, x);
  l.bin.add_block(std::move(b).build());

  const std::size_t n_cpes = 1 + rng.next_below(64);
  const bool use_barriers = rng.next_below(2) == 0;
  l.programs.resize(n_cpes);
  for (auto& p : l.programs) {
    p.delay(rng.next_below(3000));
    const int chunks = 1 + static_cast<int>(rng.next_below(5));
    for (int c = 0; c < chunks; ++c) {
      const std::uint64_t bytes = 256 * (1 + rng.next_below(48));
      const auto req = mem::DmaRequest::contiguous(bytes);
      if (rng.next_below(3) == 0) {
        p.dma(req, 0).compute(0, 8 + rng.next_below(64)).dma_wait(0);
      } else {
        p.dma(req);
      }
      p.compute(0, 8 + rng.next_below(128));
      if (rng.next_below(2) == 0) {
        p.dma(mem::DmaRequest::contiguous(bytes, mem::Direction::kWrite));
      }
    }
    if (rng.next_below(4) == 0) {
      GloadLoopOp g;
      g.count = 1 + rng.next_below(32);
      g.bytes = 8;
      g.compute_ticks_per_elem = rng.next_below(40);
      p.gload_loop(g);
    }
    if (use_barriers) p.barrier();
  }
  return l;
}

class FastEngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastEngineProperty, MatchesReferenceIncludingTraces) {
  const Launch l = make_launch(GetParam());
  SimConfig cfg{kArch, 1};
  cfg.trace = true;
  const SimResult fast = simulate(cfg, l.bin, l.programs);
  const SimResult ref = simulate_reference(cfg, l.bin, l.programs);
  expect_identical_but_counters(fast, ref);
  // Both engines account every pop; the fast engine never pops more.
  EXPECT_GT(ref.counters.events_popped, 0u);
  EXPECT_LE(fast.counters.events_popped, ref.counters.events_popped);
  EXPECT_EQ(ref.counters.dma_trains, 0u);
  EXPECT_EQ(ref.counters.trains_fast_forwarded, 0u);
}

TEST_P(FastEngineProperty, MatchesReferenceOnTwoCoreGroups) {
  const Launch l = make_launch(GetParam() ^ 0x5eed);
  // Multi-CG runs round-robin requests across controllers; the
  // fast-forward guard must stand down (it reasons about one controller).
  const SimConfig cfg{kArch, 2};
  const SimResult fast = simulate(cfg, l.bin, l.programs);
  const SimResult ref = simulate_reference(cfg, l.bin, l.programs);
  EXPECT_EQ(fast.total_ticks, ref.total_ticks);
  EXPECT_EQ(fast.mem_busy_ticks, ref.mem_busy_ticks);
  EXPECT_EQ(fast.counters.trains_fast_forwarded, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastEngineProperty,
                         ::testing::Values(7, 14, 21, 28, 35, 42, 49, 56,
                                           63, 70));

// ---- Fast-forward guard boundary -------------------------------------------
//
// CPE 0 issues one n-transaction blocking DMA train at tick 0 (arrivals at
// 0, Δ, ..., (n-1)Δ; with an idle controller the batch drains by
// W = (n-1)·max(Δ, service) + service, both terms taken from the actual
// engine components, not re-derived).  CPE 1 sleeps and then issues a
// single Gload whose arrival at tick d is the only foreign event in the
// queue (a pure delay never enters the queue — it advances the CPE's
// local clock inline).  The guard may only grant the train analytically
// when no foreign event can land inside the window: d == W is exactly at
// the window end (no fast-forward), d == W+1 is one tick outside (the
// whole train fast-forwards at its first pop).  Both must stay
// bit-identical to the reference either way.

struct BoundaryRun {
  SimResult fast;
  SimResult ref;
};

BoundaryRun run_boundary(sw::Tick arrival_tick, std::uint64_t bytes) {
  KernelBinary bin;
  std::vector<CpeProgram> programs(2);
  programs[0].dma(mem::DmaRequest::contiguous(bytes));
  programs[1].delay(arrival_tick);
  programs[1].gload_loop(GloadLoopOp{1, 8, mem::Direction::kRead, 0});
  SimConfig cfg{kArch, 1};
  cfg.trace = true;
  BoundaryRun r;
  r.fast = simulate(cfg, bin, programs);
  r.ref = simulate_reference(cfg, bin, programs);
  return r;
}

/// The guard's window end for an n-transaction train popped at tick 0,
/// using the same Δ and service ticks the engine uses.
sw::Tick batch_window_end(std::uint64_t n) {
  const sw::Tick delta = mem::DmaEngine(kArch).delta_ticks();
  const sw::Tick service = mem::MemoryController(kArch).service_ticks();
  return (n - 1) * std::max(delta, service) + service;
}

TEST(FastForwardGuard, ForeignEventAtWindowEndBlocksFastForward) {
  const std::uint64_t bytes = 8192;
  const std::uint64_t n =
      mem::DmaRequest::contiguous(bytes).transactions(kArch);
  ASSERT_GE(n, 2u);
  const BoundaryRun at_edge = run_boundary(batch_window_end(n), bytes);
  expect_identical_but_counters(at_edge.fast, at_edge.ref);
  EXPECT_EQ(at_edge.fast.counters.trains_fast_forwarded, 0u)
      << "a foreign event exactly at the window end can still land inside "
         "the batch; the guard must stand down";
  EXPECT_EQ(at_edge.fast.counters.dma_trains, 1u);
  EXPECT_EQ(at_edge.fast.counters.ff_transactions, 0u);
}

TEST(FastForwardGuard, ForeignEventOneTickOutsideWindowAllowsFastForward) {
  const std::uint64_t bytes = 8192;
  const std::uint64_t n =
      mem::DmaRequest::contiguous(bytes).transactions(kArch);
  const BoundaryRun outside = run_boundary(batch_window_end(n) + 1, bytes);
  expect_identical_but_counters(outside.fast, outside.ref);
  EXPECT_EQ(outside.fast.counters.trains_fast_forwarded, 1u);
  EXPECT_EQ(outside.fast.counters.ff_transactions, n)
      << "the whole train should have been granted analytically at its "
         "first pop";
}

TEST(FastForwardGuard, UncontendedTrainCountsAndSavings) {
  KernelBinary bin;
  std::vector<CpeProgram> programs(1);
  const auto req = mem::DmaRequest::contiguous(4096);
  const std::uint64_t n = req.transactions(kArch);
  const int requests = 8;
  for (int i = 0; i < requests; ++i) programs[0].dma(req);
  const SimConfig cfg{kArch, 1};

  const SimResult fast = simulate(cfg, bin, programs);
  const SimResult ref = simulate_reference(cfg, bin, programs);
  EXPECT_EQ(fast.total_ticks, ref.total_ticks);

  EXPECT_EQ(fast.counters.dma_trains, static_cast<std::uint64_t>(requests));
  EXPECT_EQ(fast.counters.trains_fast_forwarded,
            static_cast<std::uint64_t>(requests));
  EXPECT_EQ(fast.counters.ff_transactions,
            static_cast<std::uint64_t>(requests) * n);
  EXPECT_GT(fast.counters.heap_pushes_avoided, 0u);
  EXPECT_LT(fast.counters.events_popped, ref.counters.events_popped);
  EXPECT_EQ(ref.counters.heap_pushes_avoided, 0u);
}

// ---- Contended regime: batched grants + train absorption -------------------
//
// Many CPEs flood one controller with overlapping blocking DMA trains, so
// the aggregate arrival rate (one transaction per CPE per Δ) far outruns
// the service rate and the backlog stays deep.  This is the regime where
// the batched grant and the virtual-burst absorption fast paths carry the
// run; both must stay bit-identical to the reference, traces included.

Launch make_contended_launch(std::uint64_t seed) {
  sw::Rng rng(seed);
  Launch l;
  isa::BlockBuilder b("body");
  const auto x = b.reg();
  b.fmul(x, x);
  l.bin.add_block(std::move(b).build());

  const std::size_t n_cpes = 48 + rng.next_below(17);
  l.programs.resize(n_cpes);
  std::uint64_t c = 0;
  for (auto& p : l.programs) {
    p.delay(37 * (c % 8) + rng.next_below(200));
    const int bursts = 2 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < bursts; ++i) {
      const std::uint64_t kb = 4 + rng.next_below(13);
      p.dma(mem::DmaRequest::contiguous(kb * 1024));
      p.compute(0, rng.next_below(32));
    }
    ++c;
  }
  return l;
}

class ContendedEngineProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContendedEngineProperty, MatchesReferenceWithFastPathsEngaged) {
  const Launch l = make_contended_launch(GetParam());
  SimConfig cfg{kArch, 1};
  cfg.trace = true;
  const SimResult fast = simulate(cfg, l.bin, l.programs);
  const SimResult ref = simulate_reference(cfg, l.bin, l.programs);
  expect_identical_but_counters(fast, ref);
  // The point of the workload: the contended fast paths must actually
  // engage — and only in the fast engine.
  EXPECT_GT(fast.counters.batched_grants, 0u);
  EXPECT_GT(fast.counters.batched_transactions, fast.counters.batched_grants);
  EXPECT_GT(fast.counters.train_arrivals_absorbed, 0u);
  EXPECT_LT(fast.counters.events_popped, ref.counters.events_popped);
  EXPECT_EQ(ref.counters.batched_grants, 0u);
  EXPECT_EQ(ref.counters.batched_transactions, 0u);
  EXPECT_EQ(ref.counters.train_arrivals_absorbed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContendedEngineProperty,
                         ::testing::Values(3, 11, 19, 27, 35, 43, 51, 59, 67,
                                           75));

// ---- Batching guard boundary -----------------------------------------------
//
// The batched grant keeps its whole decision window strictly inside one
// data-return latency (j·S < L), so L <= S disables batching outright and
// the smallest L with L > S admits exactly one extra transaction per
// grant.  Straddle that edge with the same contended workload: one cycle
// of l_base separates "no batching at all" from "exactly one transaction
// inside every batch window".  Bit-identity must hold on both sides.

sw::ArchParams arch_with_l_base(std::uint32_t cycles) {
  sw::ArchParams a;
  a.l_base_cycles = cycles;
  return a;
}

/// Largest l_base (cycles) whose tick latency still sits at or below the
/// controller's service ticks — the last value where batching stays off.
std::uint32_t max_disabled_l_base_cycles() {
  const sw::Tick S = mem::MemoryController(sw::ArchParams{}).service_ticks();
  std::uint32_t c = 1;
  while (mem::MemoryController(arch_with_l_base(c + 1)).l_base_ticks() <= S) {
    ++c;
  }
  return c;
}

TEST(BatchGuardBoundary, LatencyAtOrBelowServiceDisablesBatching) {
  const Launch l = make_contended_launch(5);
  SimConfig cfg{arch_with_l_base(max_disabled_l_base_cycles()), 1};
  cfg.trace = true;
  ASSERT_LE(mem::MemoryController(cfg.arch).l_base_ticks(),
            mem::MemoryController(cfg.arch).service_ticks());
  const SimResult fast = simulate(cfg, l.bin, l.programs);
  const SimResult ref = simulate_reference(cfg, l.bin, l.programs);
  expect_identical_but_counters(fast, ref);
  EXPECT_EQ(fast.counters.batched_grants, 0u);
  EXPECT_EQ(fast.counters.batched_transactions, 0u);
}

TEST(BatchGuardBoundary, OneCycleAboveServiceBatchesOneTransactionPerGrant) {
  const Launch l = make_contended_launch(5);
  SimConfig cfg{arch_with_l_base(max_disabled_l_base_cycles() + 1), 1};
  cfg.trace = true;
  const mem::MemoryController mc(cfg.arch);
  ASSERT_GT(mc.l_base_ticks(), mc.service_ticks());
  // Depth bound (L-1)/S is exactly 1 for this arch: each batch window can
  // hold one transaction beyond the slot-fired grant, never more.
  ASSERT_EQ((mc.l_base_ticks() - 1) / mc.service_ticks(), 1);
  const SimResult fast = simulate(cfg, l.bin, l.programs);
  const SimResult ref = simulate_reference(cfg, l.bin, l.programs);
  expect_identical_but_counters(fast, ref);
  EXPECT_GT(fast.counters.batched_grants, 0u);
  EXPECT_EQ(fast.counters.batched_transactions,
            2 * fast.counters.batched_grants);
}

}  // namespace
}  // namespace swperf::sim
