#include "isa/reorder.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "isa/schedule.h"
#include "isa/unroll.h"
#include "sw/rng.h"

namespace swperf::isa {
namespace {

const sw::ArchParams kArch;

/// Serial-order fingerprint of a block's dataflow: executes instructions
/// sequentially over symbolic register values; any reordering that respects
/// RAW/WAW/WAR produces the same final value for every register.
std::map<Reg, std::uint64_t> dataflow_fingerprint(const BasicBlock& blk) {
  std::map<Reg, std::uint64_t> val;
  for (Reg r = 0; r < blk.num_regs; ++r) {
    val[r] = 0x1000 + static_cast<std::uint64_t>(r);
  }
  std::uint64_t store_hash = 0;
  for (const auto& i : blk.instrs) {
    std::uint64_t v = static_cast<std::uint64_t>(i.cls) * 0x9e3779b9;
    for (Reg s : i.srcs) {
      if (s != kNoReg) v = v * 1099511628211ULL + val[s];
    }
    if (i.dst != kNoReg) {
      val[i.dst] = v;
    } else {
      // Stores have no ordering edges between each other (the IR carries no
      // addresses), so fold them commutatively.
      store_hash += v;
      val[kNoReg] = store_hash;
    }
  }
  return val;
}

BasicBlock naive_interleaved_chains() {
  // The kmeans pattern: per cluster, load -> sub -> accumulate, written in
  // source order; naive order serialises on the in-order pipeline.
  BlockBuilder b("chains");
  const Reg x = b.spm_load();
  for (int c = 0; c < 8; ++c) {
    const Reg cf = b.spm_load();
    const Reg d = b.fsub(x, cf);
    const Reg acc = b.reg();
    b.accumulate_fma(acc, d, d);
  }
  b.loop_overhead(2);
  return std::move(b).build();
}

TEST(Reorder, NeverWorseThanSourceOrder) {
  const auto blk = naive_interleaved_chains();
  const auto r = reorder_for_ilp(blk, kArch);
  LoopSchedule before(blk, kArch);
  LoopSchedule after(r, kArch);
  EXPECT_LE(after.steady_ii(), before.steady_ii());
}

TEST(Reorder, RecoversInterleavedChainILP) {
  const auto blk = naive_interleaved_chains();
  LoopSchedule before(blk, kArch);
  LoopSchedule after(reorder_for_ilp(blk, kArch), kArch);
  // Source order pays the full ld->sub->fma latency per cluster (~12
  // cycles each); a good list schedule overlaps the 8 chains.
  EXPECT_GT(before.steady_ii(), 90u);
  EXPECT_LT(after.steady_ii(), 30u);
}

TEST(Reorder, PreservesDataflow) {
  const auto blk = naive_interleaved_chains();
  const auto r = reorder_for_ilp(blk, kArch);
  EXPECT_EQ(dataflow_fingerprint(blk), dataflow_fingerprint(r));
  EXPECT_EQ(r.instrs.size(), blk.instrs.size());
}

TEST(Reorder, PreservesDataflowOnRandomBlocks) {
  sw::Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    BlockBuilder b("rand");
    std::vector<Reg> pool;
    for (int i = 0; i < 4; ++i) pool.push_back(b.reg());
    for (int i = 0; i < 30; ++i) {
      const auto pick = [&] {
        return pool[rng.next_below(pool.size())];
      };
      switch (rng.next_below(6)) {
        case 0: pool.push_back(b.fadd(pick(), pick())); break;
        case 1: pool.push_back(b.fmul(pick(), pick())); break;
        case 2: pool.push_back(b.fma(pick(), pick(), pick())); break;
        case 3: pool.push_back(b.spm_load()); break;
        case 4: b.spm_store(pick()); break;
        case 5: b.accumulate_add(pick(), pick()); break;
      }
    }
    const auto blk = std::move(b).build();
    const auto r = reorder_for_ilp(blk, kArch);
    ASSERT_EQ(dataflow_fingerprint(blk), dataflow_fingerprint(r))
        << "trial " << trial;
    LoopSchedule before(blk, kArch);
    LoopSchedule after(r, kArch);
    EXPECT_LE(after.steady_ii(), before.steady_ii() + 1) << "trial " << trial;
  }
}

TEST(Reorder, TinyBlocksPassThrough) {
  BlockBuilder b("tiny");
  const Reg x = b.reg();
  b.fadd(x, x);
  const auto blk = std::move(b).build();
  const auto r = reorder_for_ilp(blk, kArch);
  EXPECT_EQ(r.instrs.size(), 1u);
}

TEST(Reorder, ComposesWithUnroll) {
  const auto blk = naive_interleaved_chains();
  const auto u = unroll(blk, UnrollOptions{2, true, true});
  const auto r = reorder_for_ilp(u, kArch);
  EXPECT_EQ(dataflow_fingerprint(u), dataflow_fingerprint(r));
  LoopSchedule lu(u, kArch);
  LoopSchedule lr(r, kArch);
  EXPECT_LE(lr.steady_ii(), lu.steady_ii());
}

}  // namespace
}  // namespace swperf::isa
