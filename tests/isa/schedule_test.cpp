#include "isa/schedule.h"

#include <gtest/gtest.h>

#include "sw/error.h"

namespace swperf::isa {
namespace {

const sw::ArchParams kArch;

BasicBlock single_fadd() {
  BlockBuilder b("one");
  const Reg x = b.reg();
  b.fadd(x, x);
  return std::move(b).build();
}

TEST(Schedule, SingleInstructionSpanIsItsLatency) {
  const auto s = schedule_block(single_fadd(), kArch);
  EXPECT_EQ(s.span_cycles, 9u);
  ASSERT_EQ(s.issue_cycle.size(), 1u);
  EXPECT_EQ(s.issue_cycle[0], 0u);
}

TEST(Schedule, IndependentFloatsIssueOnePerCycle) {
  BlockBuilder b("indep");
  const Reg x = b.reg();
  for (int i = 0; i < 16; ++i) b.fmul(x, x);
  const auto s = schedule_block(std::move(b).build(), kArch);
  // Issue-limited: 16 issues then the 9-cycle drain of the last one.
  EXPECT_EQ(s.span_cycles, 15u + 9u);
  // avg_ILP approaches the pipeline depth (paper: "as many as 8").
  EXPECT_GT(s.avg_ilp(kArch), 5.0);
}

TEST(Schedule, DependentChainSerialises) {
  BlockBuilder b("chain");
  Reg x = b.reg();
  for (int i = 0; i < 8; ++i) x = b.fadd(x, x);
  const auto s = schedule_block(std::move(b).build(), kArch);
  EXPECT_EQ(s.span_cycles, 8u * 9u);
  EXPECT_NEAR(s.avg_ilp(kArch), 1.0, 1e-9);
}

TEST(Schedule, DualIssueAcrossPipelines) {
  BlockBuilder b("dual");
  const Reg x = b.reg();
  // Independent compute and SPM streams can pair each cycle.
  for (int i = 0; i < 8; ++i) {
    b.fmul(x, x);
    b.spm_load();
  }
  const auto s = schedule_block(std::move(b).build(), kArch);
  // 8 paired issue cycles; drain of the last fmul dominates.
  EXPECT_LE(s.span_cycles, 8u + 9u);
}

TEST(Schedule, SamePipelineLimitsIssue) {
  BlockBuilder b("p1");
  for (int i = 0; i < 10; ++i) b.spm_load();
  const auto s = schedule_block(std::move(b).build(), kArch);
  EXPECT_EQ(s.span_cycles, 9u + 3u);  // one per cycle on pipe 1
}

TEST(Schedule, DivBlocksPipelineWhileExecuting) {
  BlockBuilder b("div");
  const Reg x = b.reg();
  b.fdiv(x, x);
  b.fmul(x, x);  // independent, but pipe 0 is held by the divide
  const auto s = schedule_block(std::move(b).build(), kArch);
  ASSERT_EQ(s.issue_cycle.size(), 2u);
  EXPECT_EQ(s.issue_cycle[1], 34u);
}

TEST(Schedule, InOrderIssueRespectsProgramOrder) {
  BlockBuilder b("inorder");
  Reg x = b.reg();
  x = b.fadd(x, x);        // issues at 0
  const Reg y = b.fmul(x, x);  // depends: issues at 9
  b.spm_load();            // independent & other pipe, but in-order: >= 9
  (void)y;
  const auto s = schedule_block(std::move(b).build(), kArch);
  EXPECT_GE(s.issue_cycle[2], s.issue_cycle[1]);
}

TEST(LoopSchedule, MatchesRepeatedBruteForceSchedule) {
  // A reduction: acc = fadd(acc, x) executed N times must serialise at one
  // 9-cycle step per iteration.
  BlockBuilder b("red");
  const Reg acc = b.reg();
  const Reg x = b.spm_load();
  b.accumulate_add(acc, x);
  const BasicBlock blk = std::move(b).build();
  LoopSchedule ls(blk, kArch);
  EXPECT_EQ(ls.steady_ii(), 9u);
  EXPECT_EQ(ls.cycles(0), 0u);
  const auto c100 = ls.cycles(100);
  const auto c101 = ls.cycles(101);
  EXPECT_EQ(c101 - c100, 9u);
  EXPECT_NEAR(ls.avg_ilp(kArch, 10000), (9.0 + 3.0) / 9.0, 0.05);
}

class LoopExtrapolation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LoopExtrapolation, PrefixPlusSteadyStateIsConsistent) {
  BlockBuilder b("body");
  const Reg inv = b.reg();
  const Reg x = b.spm_load();
  const Reg y = b.fmul(x, inv);
  const Reg acc = b.reg();
  b.accumulate_add(acc, y);
  b.loop_overhead(2);
  const BasicBlock blk = std::move(b).build();
  LoopSchedule ls(blk, kArch);
  const std::uint64_t n = GetParam();
  // cycles() must be monotone and super-additive within one II per step.
  EXPECT_GE(ls.cycles(n + 1), ls.cycles(n));
  EXPECT_EQ(ls.cycles(n + 16) - ls.cycles(n + 15), ls.steady_ii());
  EXPECT_GE(ls.cycles(n), n > 0 ? ls.steady_ii() * (n - 1) : 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LoopExtrapolation,
                         ::testing::Values(1, 2, 3, 7, 64, 1000, 1000000));

TEST(LoopSchedule, EmptyBlockIsZero) {
  BasicBlock blk;
  blk.name = "empty";
  LoopSchedule ls(blk, kArch);
  EXPECT_EQ(ls.cycles(100), 0u);
}

TEST(LoopSchedule, CountsPerIteration) {
  BlockBuilder b("c");
  const Reg x = b.reg();
  b.fma(x, x, x);
  b.spm_load();
  const BasicBlock blk = std::move(b).build();
  LoopSchedule ls(blk, kArch);
  EXPECT_EQ(ls.counts_per_iter()[OpClass::kFloatFma], 1u);
  EXPECT_EQ(ls.counts_per_iter()[OpClass::kSpmLoad], 1u);
}

}  // namespace
}  // namespace swperf::isa
