#include "isa/unroll.h"

#include <gtest/gtest.h>

#include "isa/schedule.h"
#include "sw/error.h"

namespace swperf::isa {
namespace {

const sw::ArchParams kArch;

BasicBlock reduction_body() {
  BlockBuilder b("red");
  const Reg acc = b.reg();
  const Reg x = b.spm_load();
  b.accumulate_add(acc, x);
  b.loop_overhead(2);
  return std::move(b).build();
}

TEST(Unroll, FactorOneIsIdentity) {
  const auto blk = reduction_body();
  const auto u = unroll(blk, UnrollOptions{1, true, true});
  EXPECT_EQ(u.instrs.size(), blk.instrs.size());
  EXPECT_EQ(u.num_regs, blk.num_regs);
}

TEST(Unroll, RejectsNonPositiveFactor) {
  EXPECT_THROW(unroll(reduction_body(), UnrollOptions{0, true, true}),
               sw::Error);
}

TEST(Unroll, CollapsesLoopOverhead) {
  const auto blk = reduction_body();  // 2 real + 2 overhead instrs
  const auto u = unroll(blk, UnrollOptions{4, true, true});
  // 4 copies of (load + accumulate) + overhead once.
  EXPECT_EQ(u.instrs.size(), 4u * 2u + 2u);
  const auto keep = unroll(blk, UnrollOptions{4, true, false});
  EXPECT_EQ(keep.instrs.size(), 4u * 4u);
}

TEST(Unroll, SplitReductionsCreatesIndependentChains) {
  const auto blk = reduction_body();
  // Serial chain: one 9-cycle fadd per source iteration.
  LoopSchedule serial(blk, kArch);
  EXPECT_EQ(serial.steady_ii(), 9u);

  // Unrolled x4 with split accumulators: 4 chains interleave; per-source-
  // iteration cost drops well below 9 cycles.
  const auto split = unroll(blk, UnrollOptions{4, true, true});
  LoopSchedule ls(split, kArch);
  EXPECT_LT(ls.steady_ii(), 4u * 9u);
  // Source order still pays the load->add latency per copy (~3.5 cycles per
  // source iteration); the reorder pass (reorder_test) recovers the rest.
  EXPECT_LE(ls.steady_ii(), 16u);

  // Without splitting, the chain stays serial: 4 x 9 per unrolled body.
  const auto noSplit = unroll(blk, UnrollOptions{4, false, true});
  LoopSchedule lsNoSplit(noSplit, kArch);
  EXPECT_EQ(lsNoSplit.steady_ii(), 36u);
}

TEST(Unroll, CarriedRegisterCountMatchesSplit) {
  const auto blk = reduction_body();
  ASSERT_EQ(blk.carried().size(), 1u);
  const auto split = unroll(blk, UnrollOptions{4, true, true});
  EXPECT_EQ(split.carried().size(), 4u);  // one accumulator per copy
  const auto noSplit = unroll(blk, UnrollOptions{4, false, true});
  EXPECT_EQ(noSplit.carried().size(), 1u);
}

TEST(Unroll, InstructionCountsScale) {
  BlockBuilder b("t");
  const Reg x = b.spm_load();
  b.fma(x, x, x);
  const auto blk = std::move(b).build();
  const auto u = unroll(blk, UnrollOptions{8, true, true});
  const auto c = u.class_counts();
  EXPECT_EQ(c[OpClass::kSpmLoad], 8u);
  EXPECT_EQ(c[OpClass::kFloatFma], 8u);
  EXPECT_NO_THROW(u.validate());
}

TEST(Unroll, SharedInvariantStaysShared) {
  BlockBuilder b("t");
  const Reg inv = b.reg();  // live-in, never written
  const Reg x = b.spm_load();
  b.fmul(x, inv);
  const auto blk = std::move(b).build();
  const auto u = unroll(blk, UnrollOptions{3, true, true});
  // Every copy's fmul reads the same invariant register.
  int uses = 0;
  for (const auto& i : u.instrs) {
    for (Reg s : i.srcs) uses += (s == inv) ? 1 : 0;
  }
  EXPECT_EQ(uses, 3);
}

}  // namespace
}  // namespace swperf::isa
