#include "isa/block.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sw/error.h"

namespace swperf::isa {
namespace {

TEST(BlockBuilder, EmitsInstructionsWithFreshRegisters) {
  BlockBuilder b("t");
  const Reg x = b.reg();
  const Reg y = b.fadd(x, x);
  const Reg z = b.fmul(y, x);
  b.spm_store(z);
  const BasicBlock blk = std::move(b).build();
  ASSERT_EQ(blk.instrs.size(), 3u);
  EXPECT_EQ(blk.instrs[0].cls, OpClass::kFloatAdd);
  EXPECT_EQ(blk.instrs[1].cls, OpClass::kFloatMul);
  EXPECT_EQ(blk.instrs[2].cls, OpClass::kSpmStore);
  EXPECT_EQ(blk.instrs[2].dst, kNoReg);
  EXPECT_NE(y, z);
  EXPECT_EQ(blk.num_regs, 3);
}

TEST(BasicBlock, LiveInAndCarried) {
  BlockBuilder b("t");
  const Reg invariant = b.reg();   // read, never written
  const Reg acc = b.reg();         // read and written: carried
  const Reg x = b.spm_load();
  const Reg y = b.fmul(x, invariant);
  b.accumulate_add(acc, y);
  const BasicBlock blk = std::move(b).build();

  const auto live = blk.live_in();
  EXPECT_TRUE(std::count(live.begin(), live.end(), invariant));
  EXPECT_TRUE(std::count(live.begin(), live.end(), acc));
  EXPECT_FALSE(std::count(live.begin(), live.end(), x));

  const auto carried = blk.carried();
  ASSERT_EQ(carried.size(), 1u);
  EXPECT_EQ(carried[0], acc);
}

TEST(BasicBlock, ValueDefinedInBlockIsNotLiveIn) {
  BlockBuilder b("t");
  const Reg x = b.spm_load();
  b.fadd(x, x);
  const BasicBlock blk = std::move(b).build();
  EXPECT_TRUE(blk.live_in().empty());
  EXPECT_TRUE(blk.carried().empty());
}

TEST(BasicBlock, ValidateCatchesOutOfRangeRegisters) {
  BasicBlock blk;
  blk.name = "bad";
  blk.num_regs = 1;
  Instr i;
  i.cls = OpClass::kFloatAdd;
  i.dst = 5;  // out of range
  blk.instrs.push_back(i);
  EXPECT_THROW(blk.validate(), sw::Error);
}

TEST(BasicBlock, ValidateRejectsStoreWithDestination) {
  BasicBlock blk;
  blk.name = "bad";
  blk.num_regs = 2;
  Instr i;
  i.cls = OpClass::kSpmStore;
  i.dst = 1;
  i.srcs = {0, kNoReg, kNoReg};
  blk.instrs.push_back(i);
  EXPECT_THROW(blk.validate(), sw::Error);
}

TEST(BasicBlock, ClassCountsAndFlops) {
  BlockBuilder b("t");
  const Reg x = b.reg();
  const Reg y = b.fma(x, x, x);
  b.fdiv(y, x);
  b.fixed(x);
  const BasicBlock blk = std::move(b).build();
  const auto c = blk.class_counts();
  EXPECT_EQ(c[OpClass::kFloatFma], 1u);
  EXPECT_EQ(c[OpClass::kFloatDiv], 1u);
  EXPECT_EQ(c[OpClass::kFixed], 1u);
  EXPECT_EQ(c.total(), 3u);
  EXPECT_EQ(c.total_flops(), 3u);  // fma counts 2, div counts 1
}

TEST(BasicBlock, LoopOverheadMarked) {
  BlockBuilder b("t");
  b.loop_overhead(2);
  const BasicBlock blk = std::move(b).build();
  ASSERT_EQ(blk.instrs.size(), 2u);
  EXPECT_TRUE(blk.instrs[0].loop_overhead);
  EXPECT_TRUE(blk.instrs[1].loop_overhead);
}

TEST(OpClassCounts, ArithmeticHelpers) {
  OpClassCounts a;
  a[OpClass::kFloatAdd] = 2;
  OpClassCounts b;
  b[OpClass::kFloatAdd] = 1;
  b[OpClass::kFixed] = 3;
  a += b;
  EXPECT_EQ(a[OpClass::kFloatAdd], 3u);
  EXPECT_EQ(a[OpClass::kFixed], 3u);
  const auto s = a.scaled(2);
  EXPECT_EQ(s[OpClass::kFloatAdd], 6u);
  EXPECT_NE(a.to_string().find("fadd:3"), std::string::npos);
}

TEST(Instr, PipelineAssignment) {
  EXPECT_EQ(pipe_of(OpClass::kFloatAdd), Pipe::kCompute);
  EXPECT_EQ(pipe_of(OpClass::kFixed), Pipe::kCompute);
  EXPECT_EQ(pipe_of(OpClass::kSpmLoad), Pipe::kMemory);
  EXPECT_EQ(pipe_of(OpClass::kSpmStore), Pipe::kMemory);
  EXPECT_TRUE(is_unpipelined(OpClass::kFloatDiv));
  EXPECT_TRUE(is_unpipelined(OpClass::kFloatSqrt));
  EXPECT_FALSE(is_unpipelined(OpClass::kFloatFma));
}

TEST(Instr, TableILatencies) {
  const sw::ArchParams p;
  EXPECT_EQ(latency_of(OpClass::kFloatAdd, p), 9u);
  EXPECT_EQ(latency_of(OpClass::kFloatDiv, p), 34u);
  EXPECT_EQ(latency_of(OpClass::kFixed, p), 1u);
  EXPECT_EQ(latency_of(OpClass::kSpmLoad, p), 3u);
}

}  // namespace
}  // namespace swperf::isa
