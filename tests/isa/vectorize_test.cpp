#include "isa/vectorize.h"

#include <gtest/gtest.h>

#include "isa/schedule.h"
#include "isa/unroll.h"
#include "sw/error.h"

namespace swperf::isa {
namespace {

const sw::ArchParams kArch;

BasicBlock stream_body() {
  BlockBuilder b("body");
  const auto x = b.spm_load();
  const auto y = b.spm_load();
  b.spm_store(b.fma(x, y, x));
  b.loop_overhead(2);
  return std::move(b).build();
}

TEST(Vectorize, WidthOneIsIdentity) {
  const auto blk = stream_body();
  const auto v = vectorize(blk, 1);
  EXPECT_EQ(v.lanes, 1u);
  EXPECT_EQ(v.name, blk.name);
}

TEST(Vectorize, KeepsInstructionStreamWidensCoverage) {
  const auto blk = stream_body();
  const auto v = vectorize(blk, 4);
  EXPECT_EQ(v.lanes, 4u);
  EXPECT_EQ(v.instrs.size(), blk.instrs.size());
  EXPECT_EQ(v.name, "body_v4");
  // Same static schedule per execution: 4x fewer executions = ~4x faster.
  LoopSchedule scalar(blk, kArch);
  LoopSchedule vec(v, kArch);
  EXPECT_EQ(scalar.steady_ii(), vec.steady_ii());
}

TEST(Vectorize, RejectsBadWidths) {
  EXPECT_THROW(vectorize(stream_body(), 3), sw::Error);
  EXPECT_THROW(vectorize(stream_body(), 8), sw::Error);
  EXPECT_THROW(vectorize(vectorize(stream_body(), 4), 4), sw::Error);
}

TEST(Vectorize, ComposesWithUnroll) {
  const auto v = vectorize(stream_body(), 4);
  const auto u = unroll(v, UnrollOptions{2, true, true});
  EXPECT_EQ(u.lanes, 4u);  // lanes survive unrolling
  // 2 copies of the 4 real instructions + collapsed overhead.
  EXPECT_EQ(u.instrs.size(), 2u * 4u + 2u);
}

}  // namespace
}  // namespace swperf::isa
