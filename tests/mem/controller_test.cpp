#include "mem/controller.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sw/error.h"

namespace swperf::mem {
namespace {

const sw::ArchParams kArch;
constexpr sw::Tick kLBase = 220 * sw::kTicksPerCycle;   // 2200
constexpr sw::Tick kService = 116;                      // 11.6 cycles

/// Drives the controller's event protocol for a pre-planned arrival list,
/// returning each transaction's data-ready tick in grant order.
std::vector<std::pair<std::uint64_t, sw::Tick>> drive(
    MemoryController& mc, std::vector<std::pair<sw::Tick, std::uint64_t>> arrivals) {
  std::vector<std::pair<std::uint64_t, sw::Tick>> grants;
  std::size_t next = 0;
  while (next < arrivals.size() || mc.service_pending()) {
    const sw::Tick ta =
        next < arrivals.size() ? arrivals[next].first : sw::kTickNever;
    const sw::Tick ts =
        mc.service_pending() ? mc.busy_until() : sw::kTickNever;
    std::optional<MemoryController::Grant> g;
    if (ta <= ts) {
      g = mc.arrive(ta, arrivals[next].second);
      ++next;
    } else {
      g = mc.service(ts);
    }
    if (g) grants.emplace_back(g->stream, g->data_ready);
  }
  return grants;
}

TEST(MemoryController, SingleTransactionLatencyIsLBase) {
  MemoryController mc(kArch);
  const auto g = mc.arrive(1000, 1);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->data_ready, 1000 + kLBase);
  EXPECT_EQ(mc.busy_until(), 1000 + kService);
  EXPECT_EQ(mc.transactions(), 1u);
}

TEST(MemoryController, BackToBackThroughputIsBandwidthBound) {
  MemoryController mc(kArch);
  // 100 transactions all arriving at t=0: service starts every 116 ticks.
  std::vector<std::pair<sw::Tick, std::uint64_t>> arr;
  for (int i = 0; i < 100; ++i) arr.emplace_back(0, 1);
  const auto grants = drive(mc, arr);
  ASSERT_EQ(grants.size(), 100u);
  EXPECT_EQ(grants.front().second, kLBase);
  EXPECT_EQ(grants.back().second, 99 * kService + kLBase);
  EXPECT_EQ(mc.busy_ticks(), 100 * kService);
  EXPECT_EQ(mc.idle_ticks(), 0u);
}

TEST(MemoryController, IdleGapsAreAccounted) {
  MemoryController mc(kArch);
  const auto g1 = mc.arrive(0, 1);
  ASSERT_TRUE(g1);
  EXPECT_FALSE(mc.service(mc.busy_until()));  // queue empty: chain stops
  const auto g2 = mc.arrive(10000, 1);
  ASSERT_TRUE(g2);
  EXPECT_EQ(mc.idle_ticks(), 10000u - kService);
  EXPECT_FALSE(mc.service(mc.busy_until()));
}

TEST(MemoryController, StreamAffinityDrainsBursts) {
  MemoryController mc(kArch);
  // Streams A and B each queue 8 transactions while the controller is
  // backlogged; affinity must finish one stream's queue before the other.
  std::vector<std::pair<sw::Tick, std::uint64_t>> arr;
  arr.emplace_back(0, 7);  // seed transaction to create backlog
  for (int i = 0; i < 8; ++i) {
    arr.emplace_back(1, 100 + (i % 2));  // interleaved arrivals A,B,A,B...
  }
  const auto grants = drive(mc, arr);
  ASSERT_EQ(grants.size(), 9u);
  // After the seed, one stream must complete all 4 before the other (the
  // first queued stream wins FIFO, then affinity holds it).
  std::vector<std::uint64_t> order;
  for (std::size_t i = 1; i < grants.size(); ++i) {
    order.push_back(grants[i].first);
  }
  const std::vector<std::uint64_t> expect{100, 100, 100, 100,
                                          101, 101, 101, 101};
  EXPECT_EQ(order, expect);
}

TEST(MemoryController, NoAffinityUnderLightLoad) {
  MemoryController mc(kArch);
  // Arrivals spaced wider than the service time never queue: each is
  // served on arrival at baseline latency.
  sw::Tick t = 0;
  for (int i = 0; i < 5; ++i) {
    const auto g = mc.arrive(t, static_cast<std::uint64_t>(i));
    ASSERT_TRUE(g);
    EXPECT_EQ(g->data_ready, t + kLBase);
    EXPECT_FALSE(mc.service(mc.busy_until()));
    t += 500;
  }
}

TEST(MemoryController, ServiceBeforeBusyUntilThrows) {
  MemoryController mc(kArch);
  ASSERT_TRUE(mc.arrive(100, 1));
  EXPECT_THROW(mc.service(100), sw::Error);
  EXPECT_NO_THROW(mc.service(mc.busy_until()));
}

TEST(MemoryController, BandwidthScaleShortensService) {
  MemoryController fast(kArch, 2.0);
  EXPECT_EQ(fast.service_ticks(), kService / 2);
  MemoryController slow(kArch, 0.5);
  EXPECT_EQ(slow.service_ticks(), kService * 2);
  EXPECT_THROW(MemoryController(kArch, 0.0), sw::Error);
}

TEST(MemoryController, FifoOrderWithoutAffinityCandidates) {
  MemoryController mc(kArch);
  // Three distinct streams queued while busy: FIFO order by arrival.
  std::vector<std::pair<sw::Tick, std::uint64_t>> arr{
      {0, 1}, {1, 2}, {2, 3}, {3, 4}};
  const auto grants = drive(mc, arr);
  ASSERT_EQ(grants.size(), 4u);
  EXPECT_EQ(grants[1].first, 2u);
  EXPECT_EQ(grants[2].first, 3u);
  EXPECT_EQ(grants[3].first, 4u);
}

}  // namespace
}  // namespace swperf::mem
