#include "mem/spm.h"

#include <gtest/gtest.h>

#include "sw/error.h"

namespace swperf::mem {
namespace {

TEST(Spm, BumpAllocationWithAlignment) {
  SpmAllocator spm(1024);
  EXPECT_EQ(spm.allocate("a", 10), 0u);
  EXPECT_EQ(spm.allocate("b", 20, 32), 32u);  // aligned past the 10 bytes
  EXPECT_EQ(spm.used(), 52u);
  EXPECT_EQ(spm.remaining(), 1024u - 52u);
  ASSERT_EQ(spm.buffers().size(), 2u);
  EXPECT_EQ(spm.buffers()[1].name, "b");
  EXPECT_EQ(spm.buffers()[1].offset, 32u);
}

TEST(Spm, OverflowThrowsWithDiagnostics) {
  SpmAllocator spm(100);
  spm.allocate("a", 64);
  try {
    spm.allocate("big", 64);
    FAIL() << "expected overflow";
  } catch (const sw::Error& e) {
    EXPECT_NE(std::string(e.what()).find("big"), std::string::npos);
  }
}

TEST(Spm, WouldFitPredictsAllocate) {
  SpmAllocator spm(256);
  EXPECT_TRUE(spm.would_fit(256));
  spm.allocate("a", 200);
  EXPECT_TRUE(spm.would_fit(32));
  EXPECT_FALSE(spm.would_fit(64));  // 200 aligns to 224, 224+64 > 256
}

TEST(Spm, ExactFitIsAccepted) {
  SpmAllocator spm(128);
  EXPECT_NO_THROW(spm.allocate("a", 128));
  EXPECT_EQ(spm.remaining(), 0u);
  EXPECT_FALSE(spm.would_fit(1));
}

TEST(Spm, ResetClears) {
  SpmAllocator spm(128);
  spm.allocate("a", 100);
  spm.reset();
  EXPECT_EQ(spm.used(), 0u);
  EXPECT_TRUE(spm.buffers().empty());
  EXPECT_NO_THROW(spm.allocate("b", 128));
}

TEST(Spm, BadAlignmentRejected) {
  SpmAllocator spm(128);
  EXPECT_THROW(spm.allocate("a", 8, 3), sw::Error);
  EXPECT_THROW(spm.allocate("a", 8, 0), sw::Error);
}

}  // namespace
}  // namespace swperf::mem
