// Randomized invariant tests of the memory controller: for arbitrary
// arrival sequences, service must be work-conserving, non-overlapping,
// exhaustive, and deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "mem/controller.h"
#include "sw/rng.h"

namespace swperf::mem {
namespace {

const sw::ArchParams kArch;

struct GrantRecord {
  std::uint64_t stream;
  sw::Tick start;  // data_ready - L_base
  sw::Tick ready;
};

std::vector<GrantRecord> drive(MemoryController& mc,
                               std::vector<std::pair<sw::Tick, std::uint64_t>>
                                   arrivals) {
  std::sort(arrivals.begin(), arrivals.end());
  std::vector<GrantRecord> grants;
  const sw::Tick l_base = sw::cycles_to_ticks(kArch.l_base_cycles);
  std::size_t next = 0;
  while (next < arrivals.size() || mc.service_pending()) {
    const sw::Tick ta =
        next < arrivals.size() ? arrivals[next].first : sw::kTickNever;
    const sw::Tick ts =
        mc.service_pending() ? mc.busy_until() : sw::kTickNever;
    std::optional<MemoryController::Grant> g;
    if (ta <= ts) {
      g = mc.arrive(ta, arrivals[next].second);
      ++next;
    } else {
      g = mc.service(ts);
    }
    if (g) grants.push_back({g->stream, g->data_ready - l_base,
                             g->data_ready});
  }
  return grants;
}

std::vector<std::pair<sw::Tick, std::uint64_t>> random_arrivals(
    sw::Rng& rng, std::size_t n) {
  std::vector<std::pair<sw::Tick, std::uint64_t>> arr;
  sw::Tick t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.next_below(200);  // bursts and gaps
    arr.emplace_back(t, rng.next_below(8));
  }
  return arr;
}

class ControllerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ControllerProperty, ServiceIsExhaustiveAndNonOverlapping) {
  sw::Rng rng(GetParam());
  const auto arrivals = random_arrivals(rng, 300);
  MemoryController mc(kArch);
  const auto grants = drive(mc, arrivals);

  // Every transaction served exactly once.
  ASSERT_EQ(grants.size(), arrivals.size());
  EXPECT_EQ(mc.transactions(), arrivals.size());
  EXPECT_EQ(mc.queued(), 0u);
  std::map<std::uint64_t, int> per_stream_in, per_stream_out;
  for (const auto& [t, s] : arrivals) ++per_stream_in[s];
  for (const auto& g : grants) ++per_stream_out[g.stream];
  EXPECT_EQ(per_stream_in, per_stream_out);

  // Service periods do not overlap and are spaced by the service time.
  for (std::size_t i = 1; i < grants.size(); ++i) {
    EXPECT_GE(grants[i].start, grants[i - 1].start + mc.service_ticks());
  }

  // Work conservation: from the first service start to the last service
  // end, every tick is either busy or an accounted idle gap.
  EXPECT_EQ(mc.busy_ticks() + mc.idle_ticks(),
            mc.busy_until() - arrivals.front().first);
}

TEST_P(ControllerProperty, NoGrantBeforeArrival) {
  sw::Rng rng(GetParam() ^ 0xabc);
  const auto arrivals = random_arrivals(rng, 200);
  MemoryController mc(kArch);
  const auto grants = drive(mc, arrivals);
  // Count per stream: the k-th grant of a stream cannot start before the
  // k-th arrival of that stream (affinity reorders across streams only).
  std::map<std::uint64_t, std::vector<sw::Tick>> arr_by_stream;
  for (const auto& [t, s] : arrivals) arr_by_stream[s].push_back(t);
  std::map<std::uint64_t, std::size_t> seen;
  for (const auto& g : grants) {
    const auto k = seen[g.stream]++;
    EXPECT_GE(g.start, arr_by_stream[g.stream][k]);
  }
}

TEST_P(ControllerProperty, Deterministic) {
  sw::Rng rng(GetParam() ^ 0x123);
  const auto arrivals = random_arrivals(rng, 250);
  MemoryController a(kArch), b(kArch);
  const auto ga = drive(a, arrivals);
  const auto gb = drive(b, arrivals);
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_EQ(ga[i].stream, gb[i].stream);
    EXPECT_EQ(ga[i].ready, gb[i].ready);
  }
}

TEST_P(ControllerProperty, MakespanBoundedByBandwidthAndLatency) {
  sw::Rng rng(GetParam() ^ 0x777);
  const auto arrivals = random_arrivals(rng, 300);
  MemoryController mc(kArch);
  const auto grants = drive(mc, arrivals);
  const sw::Tick last_arrival = arrivals.back().first;
  const sw::Tick makespan = grants.back().ready;
  // Lower bound: all transactions through the pipe from t=0.
  EXPECT_GE(makespan, arrivals.size() * mc.service_ticks());
  // Upper bound: even if everything queued behind the last arrival.
  EXPECT_LE(makespan, last_arrival + arrivals.size() * mc.service_ticks() +
                          sw::cycles_to_ticks(kArch.l_base_cycles));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace swperf::mem
