#include "mem/dma.h"

#include <gtest/gtest.h>

#include "mem/request.h"
#include "sw/error.h"

namespace swperf::mem {
namespace {

const sw::ArchParams kArch;

TEST(DmaRequest, TransactionsRoundUpPerSegment_Eq5) {
  EXPECT_EQ(DmaRequest::contiguous(256).transactions(kArch), 1u);
  EXPECT_EQ(DmaRequest::contiguous(257).transactions(kArch), 2u);
  EXPECT_EQ(DmaRequest::contiguous(8192).transactions(kArch), 32u);
  // Strided: every segment rounds up separately -> transaction waste.
  EXPECT_EQ(DmaRequest::strided(8, 32).transactions(kArch), 32u);
  EXPECT_EQ(DmaRequest::contiguous(8 * 32).transactions(kArch), 1u);
}

TEST(DmaRequest, EfficiencyReflectsWaste) {
  EXPECT_DOUBLE_EQ(DmaRequest::contiguous(256).efficiency(kArch), 1.0);
  EXPECT_DOUBLE_EQ(DmaRequest::strided(64, 4).efficiency(kArch), 0.25);
  EXPECT_DOUBLE_EQ(DmaRequest{}.efficiency(kArch), 1.0);
}

TEST(DmaRequest, MultiSegmentComposition) {
  DmaRequest req;
  req.add(1000, 1).add(100, 3);
  EXPECT_EQ(req.total_bytes(), 1300u);
  EXPECT_EQ(req.transactions(kArch), 4u + 3u);
  EXPECT_EQ(req.transferred_bytes(kArch), 7u * 256u);
  EXPECT_FALSE(req.empty());
  EXPECT_TRUE(DmaRequest{}.empty());
  // Zero-byte segments are dropped.
  DmaRequest z;
  z.add(0, 5);
  EXPECT_TRUE(z.empty());
}

TEST(DmaEngine, PlanSpacesTransactionsByDeltaDelay) {
  DmaEngine eng(kArch);
  const auto offsets = eng.plan(DmaRequest::contiguous(1024));  // 4 trans
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 500u);  // 50 cycles
  EXPECT_EQ(offsets[3], 1500u);
  EXPECT_EQ(eng.delta_ticks(), 500u);
}

TEST(DmaEngine, UncontendedRequestLatencyIsEq11) {
  // L_avg = L_base + (MRT - 1) * delta: the paper's Eq. 11.
  for (const std::uint64_t bytes : {256u, 1024u, 8192u}) {
    MemoryController mc(kArch);
    DmaEngine eng(kArch);
    const auto req = DmaRequest::contiguous(bytes);
    const auto mrt = req.transactions(kArch);
    const sw::Tick done = eng.complete_request(mc, 0, req);
    EXPECT_EQ(done, sw::cycles_to_ticks(220 + (mrt - 1) * 50))
        << bytes << " bytes";
  }
}

TEST(DmaEngine, EmptyRequestRejected) {
  MemoryController mc(kArch);
  DmaEngine eng(kArch);
  EXPECT_THROW(eng.complete_request(mc, 0, DmaRequest{}), sw::Error);
}

TEST(DmaEngine, StridedAndContiguousSameBytesDifferentCost) {
  MemoryController mc1(kArch), mc2(kArch);
  DmaEngine eng(kArch);
  const auto contig = DmaRequest::contiguous(2048);   // 8 transactions
  const auto strided = DmaRequest::strided(64, 32);   // 32 transactions
  EXPECT_EQ(contig.total_bytes(), strided.total_bytes());
  const sw::Tick tc = eng.complete_request(mc1, 0, contig);
  const sw::Tick ts = eng.complete_request(mc2, 0, strided);
  EXPECT_LT(tc, ts);
  EXPECT_EQ(mc2.transactions(), 32u);
}

}  // namespace
}  // namespace swperf::mem
